"""Sorting-based permutation baseline (Section III).

The asymptotically best known *arbitrary*-permutation algorithms on a
CCC or PSC sort the records by destination tag with Batcher's bitonic
sort: ``O(log^2 N)`` routes, versus ``2 log N - 1`` for class-F
permutations via the self-routing simulation.  This module provides
that baseline so benchmark CLM-SORT can reproduce the comparison.

- :func:`sort_permute_ccc`: the classic hypercube bitonic sort —
  ``log N (log N + 1) / 2`` compare-interchanges.
- :func:`sort_permute_psc`: Stone's shuffle-exchange schedule —
  ``log N`` passes of ``log N`` shuffle(+exchange) steps; each pass's
  ``n`` shuffles compose to the identity, so compare directions can be
  recovered from the (known) de-rotated index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..errors import MachineError
from .ccc import CCC
from .machine import SIMDMachine
from .psc import PSC

__all__ = ["SortRun", "sort_permute_ccc", "sort_permute_psc",
           "bitonic_compare_count"]

PermutationLike = Union[Permutation, Sequence[int]]

DATA = "R"
TAG = "D"


@dataclass(frozen=True)
class SortRun:
    """Outcome of a sort-based permutation."""

    success: bool
    unit_routes: int
    route_instructions: int
    data: Tuple


def bitonic_compare_count(order: int) -> int:
    """Compare-interchange steps in a bitonic sort of ``2^order``
    keys: ``order (order + 1) / 2``."""
    return order * (order + 1) // 2


def _load(machine: SIMDMachine, tags: PermutationLike,
          data: Optional[Sequence]) -> None:
    perm = tags if isinstance(tags, Permutation) else Permutation(tags)
    if perm.size != machine.n_pes:
        raise MachineError(
            f"permutation of size {perm.size} on {machine.n_pes} PEs"
        )
    machine.set_register(TAG, list(perm))
    machine.set_register(
        DATA, list(data) if data is not None else list(range(perm.size))
    )


def _finish(machine: SIMDMachine, routes0: int, instr0: int) -> SortRun:
    arrived = machine.read(TAG)
    return SortRun(
        success=all(tag == pe for pe, tag in enumerate(arrived)),
        unit_routes=machine.stats.unit_routes - routes0,
        route_instructions=(
            machine.stats.route_instructions - instr0
        ),
        data=machine.read(DATA),
    )


def sort_permute_ccc(machine: CCC, tags: PermutationLike,
                     data: Optional[Sequence] = None) -> SortRun:
    """Perform an **arbitrary** permutation on a CCC by bitonic-sorting
    the records on their destination tags.

    ``log N (log N + 1) / 2`` compare-interchanges — always succeeds,
    unlike the class-F algorithm, but with Theta(log^2 N) cost.
    """
    _load(machine, tags, data)
    order = machine.dimensions
    routes0 = machine.stats.unit_routes
    instr0 = machine.stats.route_instructions
    for k in range(1, order + 1):
        for j in range(k - 1, -1, -1):
            machine.compare_interchange(
                (DATA,), TAG, j,
                ascending_for=lambda i, k=k: _bits.bit(i, k) == 0,
            )
    return _finish(machine, routes0, instr0)


def sort_permute_psc(machine: PSC, tags: PermutationLike,
                     data: Optional[Sequence] = None) -> SortRun:
    """Perform an arbitrary permutation on a PSC with Stone's
    shuffle-exchange bitonic sort.

    ``log N`` passes; each pass shuffles ``log N`` times, exchanging
    after the shuffle on the steps where the current pass's merge level
    calls for a compare.  Pass ``k`` (``1 <= k <= n``) needs compares on
    original dimensions ``k-1, ..., 0``, which surface as bit 0 on the
    last ``k`` steps of the pass.  Cost: ``n^2`` shuffles plus up to
    ``n(n+1)/2`` exchanges — Theta(log^2 N) unit-routes.
    """
    _load(machine, tags, data)
    order = machine.dimensions
    routes0 = machine.stats.unit_routes
    instr0 = machine.stats.route_instructions
    regs = (DATA, TAG)

    for k in range(1, order + 1):
        for step in range(order):
            machine.shuffle(regs)
            compared_dim = order - 1 - step
            if compared_dim > k - 1:
                continue  # dummy step: shuffle only
            # After step+1 shuffles of this pass, the value born on PE
            # p sits on PE rotate_left(p, step+1); recover the original
            # index to evaluate the bitonic direction bit.
            tag_reg = machine.register(TAG)
            swap_mask = [False] * machine.n_pes
            for pe in range(0, machine.n_pes, 2):
                partner = pe + 1
                original = _bits.rotate_right(pe, order, step + 1)
                ascending = _bits.bit(original, k) == 0
                out_of_order = tag_reg[pe] > tag_reg[partner]
                swap_mask[pe] = out_of_order == ascending
            machine.exchange(regs, swap_mask)
    return _finish(machine, routes0, instr0)
