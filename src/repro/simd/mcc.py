"""The mesh connected computer (MCC) — model 2 of Section I.

``N' = m^2`` PEs arranged in an ``m x m`` array (no wraparound); PE
``(r, c)`` connects to its existing neighbours ``(r +- 1, c)`` and
``(r, c +- 1)``.  PEs are numbered row-major, so for ``m = 2^q`` the
cube dimension ``b`` of an index corresponds to a *horizontal* distance
``2^b`` when ``b < q`` and a *vertical* distance ``2^{b-q}`` otherwise.

The paper's cost model: an interchange between PEs ``2^k`` apart along
one axis costs ``2^{k+1}`` unit-routes (``2^k`` in each direction).
That makes the full Benes-simulation loop cost ``7 sqrt(N) - 8``
unit-routes (benchmark CLM-MCC).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import MachineError
from .machine import Mask, SIMDMachine

__all__ = ["MCC"]


class MCC(SIMDMachine):
    """Mesh connected computer on ``2^(2q)`` PEs (``2^q x 2^q``)."""

    model_name = "MCC"

    def __init__(self, side_order: int):
        if side_order < 1:
            raise MachineError(
                f"need at least a 2x2 mesh, got side_order={side_order}"
            )
        self._side_order = side_order
        super().__init__(1 << (2 * side_order))

    @property
    def side_order(self) -> int:
        """``q``: the mesh is ``2^q`` PEs on a side."""
        return self._side_order

    @property
    def side(self) -> int:
        """``m = 2^q`` PEs per row/column."""
        return 1 << self._side_order

    @property
    def dimensions(self) -> int:
        """``n = 2q`` index bits."""
        return 2 * self._side_order

    def coordinates(self, pe: int) -> Tuple[int, int]:
        """Row-major ``(row, column)`` of a PE index."""
        return pe >> self._side_order, pe & (self.side - 1)

    def pe_at(self, row: int, col: int) -> int:
        """PE index of mesh position ``(row, column)``."""
        return (row << self._side_order) | col

    # ------------------------------------------------------------------
    # Routing primitives
    # ------------------------------------------------------------------

    def dimension_geometry(self, dim: int) -> Tuple[str, int]:
        """Map cube dimension ``dim`` of the row-major index to its
        mesh geometry: ``("horizontal", 2^dim)`` for ``dim < q``, else
        ``("vertical", 2^{dim-q})``."""
        if not 0 <= dim < self.dimensions:
            raise MachineError(
                f"dimension {dim} out of range 0..{self.dimensions - 1}"
            )
        if dim < self._side_order:
            return "horizontal", 1 << dim
        return "vertical", 1 << (dim - self._side_order)

    def interchange(self, names: Sequence[str], dim: int,
                    pair_mask: Optional[Mask] = None) -> None:
        """Swap registers between PE pairs differing in bit ``dim`` of
        the row-major index.

        Pairs lie ``2^k`` apart along one mesh axis (see
        :meth:`dimension_geometry`); the interchange is charged the
        paper's ``2^{k+1}`` unit-routes.  ``pair_mask`` is read on the
        pair member with bit ``dim`` clear.
        """
        _axis, distance = self.dimension_geometry(dim)
        checked = self._check_mask(pair_mask)
        self._apply_swap(names, lambda i: i ^ (1 << dim), checked)
        self._account_route(2 * distance)

    def shift(self, names: Sequence[str], axis: str, delta: int,
              mask: Optional[Mask] = None) -> None:
        """Shift register contents ``delta`` positions along ``axis``
        ("horizontal" moves columns, "vertical" moves rows); values
        shifted past the edge are dropped, vacated PEs keep their old
        contents.  Costs ``|delta|`` unit-routes."""
        if axis not in ("horizontal", "vertical"):
            raise MachineError(f"unknown axis {axis!r}")
        if delta == 0:
            return
        checked = self._check_mask(mask)
        side = self.side

        def target(i: int) -> int:
            row, col = self.coordinates(i)
            if axis == "horizontal":
                col += delta
            else:
                row += delta
            if 0 <= row < side and 0 <= col < side:
                return self.pe_at(row, col)
            return -1

        for name in names:
            reg = self.register(name)
            new = list(reg)
            for i in range(self.n_pes):
                if checked[i]:
                    t = target(i)
                    if t >= 0:
                        new[t] = reg[i]
            self._registers[name] = new
        self._account_route(abs(delta))
