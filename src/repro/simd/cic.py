"""The completely interconnected computer (CIC) — model 1 of Section I.

Every PE connects directly to every other, so any permutation of the
routing registers is a single unit-route.  The CIC is the trivial upper
bound the other three models are measured against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..core.permutation import Permutation
from ..errors import MachineError
from .machine import Mask, SIMDMachine

__all__ = ["CIC"]


class CIC(SIMDMachine):
    """Completely interconnected computer: permute in one step."""

    model_name = "CIC"

    def permute(self, names: Sequence[str],
                destinations: Union[Permutation, Sequence[int]],
                mask: Optional[Mask] = None) -> None:
        """Route register contents of PE ``i`` to PE
        ``destinations[i]`` for every enabled PE — one unit-route."""
        perm = (destinations if isinstance(destinations, Permutation)
                else Permutation(destinations))
        if perm.size != self.n_pes:
            raise MachineError(
                f"permutation of size {perm.size} on {self.n_pes} PEs"
            )
        checked = self._check_mask(mask)
        self._apply_routing(names, lambda i: perm[i], checked)
        self._account_route(1)
