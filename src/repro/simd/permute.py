"""Section III: preprocessing-free F(n) permutation algorithms.

Each algorithm simulates the self-routing Benes network on a fixed
interconnection: one masked interchange per switch stage, across cube
dimensions ``b = 0, 1, ..., n-2, n-1, n-2, ..., 0``.  The pair with
``(i)_b = 0`` plays the switch's *upper input*: the pair interchanges
exactly when bit ``b`` of that PE's destination tag is 1.

Route costs (the paper's Section III results, verified by benchmarks
CLM-CCC / CLM-PSC / CLM-MCC):

- CCC: ``2 log N - 1`` interchanges;
- PSC: ``4 log N - 3`` unit-routes (exchange/unshuffle in, exchange,
  shuffle/exchange out);
- MCC: ``7 sqrt(N) - 8`` unit-routes.

Skip rules: an Omega(n) permutation may skip the first ``n-1``
iterations, an InverseOmega(n) permutation the last ``n-1``, and a BPC
permutation every dimension ``j`` with ``A_j = +j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core import bits as _bits
from ..core.permutation import Permutation
from ..errors import InvalidParameterError, MachineError, RoutingError
from ..permclasses.bpc import BPCSpec
from .ccc import CCC
from .mcc import MCC
from .psc import PSC

__all__ = [
    "PermutationRun",
    "benes_dimension_schedule",
    "permute_ccc",
    "permute_psc",
    "permute_mcc",
]

PermutationLike = Union[Permutation, Sequence[int]]

DATA = "R"
TAG = "D"


@dataclass(frozen=True)
class PermutationRun:
    """Outcome of one SIMD permutation routing.

    Attributes:
        success: every record reached the PE named by its tag.
        unit_routes: unit-routes charged for this permutation.
        route_instructions: broadcast routing instructions issued.
        data: final contents of the data register, by PE.
        skipped_dimensions: schedule positions skipped by an
            optimization rule.
    """

    success: bool
    unit_routes: int
    route_instructions: int
    data: Tuple
    skipped_dimensions: Tuple[int, ...]
    tag_history: Tuple[Tuple[int, ...], ...] = ()


def benes_dimension_schedule(order: int) -> List[int]:
    """The loop schedule ``b = 0, 1, ..., n-2, n-1, n-2, ..., 0``
    (length ``2n - 1``) — one entry per Benes switch stage."""
    if order < 1:
        raise InvalidParameterError(f"order must be >= 1, got {order}")
    return list(range(order)) + list(range(order - 2, -1, -1))


def _load(machine, tags: PermutationLike,
          data: Optional[Sequence]) -> Permutation:
    perm = tags if isinstance(tags, Permutation) else Permutation(tags)
    if perm.size != machine.n_pes:
        raise MachineError(
            f"permutation of size {perm.size} on {machine.n_pes} PEs"
        )
    machine.set_register(TAG, list(perm))
    machine.set_register(
        DATA, list(data) if data is not None else list(range(perm.size))
    )
    return perm


def _skip_positions(order: int,
                    bpc_spec: Optional[BPCSpec],
                    omega: bool,
                    inverse_omega: bool) -> Tuple[int, ...]:
    """Schedule positions (indices into the 2n-1 entry schedule) that a
    declared permutation class allows skipping."""
    if omega and inverse_omega:
        raise MachineError("a permutation cannot be declared both "
                           "omega and inverse omega for skipping")
    schedule = benes_dimension_schedule(order)
    skipped = set()
    if omega:
        skipped.update(range(order - 1))                  # first n-1
    if inverse_omega:
        skipped.update(range(order, 2 * order - 1))       # last n-1
    if bpc_spec is not None:
        if bpc_spec.order != order:
            raise MachineError(
                f"BPC spec of order {bpc_spec.order} for machine order "
                f"{order}"
            )
        fixed = set(bpc_spec.fixed_dimensions())
        skipped.update(
            pos for pos, b in enumerate(schedule) if b in fixed
        )
    return tuple(sorted(skipped))


def _finish(machine, skipped: Tuple[int, ...],
            routes_before: int, instructions_before: int,
            tag_history: Sequence[Tuple[int, ...]] = ()
            ) -> PermutationRun:
    arrived = machine.read(TAG)
    return PermutationRun(
        success=all(tag == pe for pe, tag in enumerate(arrived)),
        unit_routes=machine.stats.unit_routes - routes_before,
        route_instructions=(
            machine.stats.route_instructions - instructions_before
        ),
        data=machine.read(DATA),
        skipped_dimensions=skipped,
        tag_history=tuple(tag_history),
    )


# ----------------------------------------------------------------------
# CCC
# ----------------------------------------------------------------------

def permute_ccc(machine: CCC, tags: PermutationLike,
                data: Optional[Sequence] = None, *,
                bpc_spec: Optional[BPCSpec] = None,
                omega: bool = False,
                inverse_omega: bool = False,
                require_success: bool = False,
                trace: bool = False) -> PermutationRun:
    """The Section III CCC algorithm::

        for b = 0, 1, ..., n-2, n-1, n-2, ..., 0 do
            (R(i^(b)), D(i^(b))) <-> (R(i), D(i)),
                (i)_b = 0 and (D(i))_b = 1
        end

    ``2 log N - 1`` interchanges for a general F(n) permutation, fewer
    under a declared skip rule.  With ``trace=True`` the run records the
    tag register after every loop iteration — the ``D(i)^(k)`` columns
    of Fig. 6.
    """
    _load(machine, tags, data)
    order = machine.dimensions
    skipped = _skip_positions(order, bpc_spec, omega, inverse_omega)
    skip_set = set(skipped)
    routes0 = machine.stats.unit_routes
    instr0 = machine.stats.route_instructions

    schedule = benes_dimension_schedule(order)
    tag_history = [machine.read(TAG)] if trace else []
    tag_reg = machine.register(TAG)
    for pos, b in enumerate(schedule):
        if pos not in skip_set:
            mask = [
                _bits.bit(i, b) == 0 and _bits.bit(tag_reg[i], b) == 1
                for i in range(machine.n_pes)
            ]
            machine.interchange((DATA, TAG), b, mask)
            tag_reg = machine.register(TAG)
        if trace:
            tag_history.append(machine.read(TAG))

    run = _finish(machine, skipped, routes0, instr0, tag_history)
    if require_success and not run.success:
        raise RoutingError("permutation is not realizable by the "
                           "self-routing simulation (not in F(n))")
    return run


# ----------------------------------------------------------------------
# PSC
# ----------------------------------------------------------------------

def permute_psc(machine: PSC, tags: PermutationLike,
                data: Optional[Sequence] = None, *,
                omega: bool = False,
                inverse_omega: bool = False,
                require_success: bool = False) -> PermutationRun:
    """The Section III PSC algorithm::

        for b := 0 to n-2 do
            EXCHANGE (R(i), D(i)), (i)_0 = 0 and (D(i))_b = 1
            UNSHUFFLE (R(i), D(i))
        end
        EXCHANGE (R(i), D(i)), (i)_0 = 0 and (D(i))_{n-1} = 1
        for b := n-2 downto 0 do
            SHUFFLE (R(i), D(i))
            EXCHANGE (R(i), D(i)), (i)_0 = 0 and (D(i))_b = 1
        end

    ``4 log N - 3`` unit-routes.  With ``omega=True`` the first loop is
    replaced by a single SHUFFLE (its ``n-1`` unshuffles compose to one
    left-rotation); with ``inverse_omega=True`` the second loop is
    replaced by a single UNSHUFFLE.
    """
    if omega and inverse_omega:
        raise MachineError("a permutation cannot be declared both "
                           "omega and inverse omega for skipping")
    _load(machine, tags, data)
    order = machine.dimensions
    routes0 = machine.stats.unit_routes
    instr0 = machine.stats.route_instructions
    regs = (DATA, TAG)

    def exchange_on_tag_bit(b: int) -> None:
        tag_reg = machine.register(TAG)
        mask = [
            i % 2 == 0 and _bits.bit(tag_reg[i], b) == 1
            for i in range(machine.n_pes)
        ]
        machine.exchange(regs, mask)

    skipped: Tuple[int, ...] = ()
    if omega:
        machine.shuffle(regs)
        skipped = tuple(range(order - 1))
    else:
        for b in range(order - 1):
            exchange_on_tag_bit(b)
            machine.unshuffle(regs)

    exchange_on_tag_bit(order - 1)

    if inverse_omega:
        machine.unshuffle(regs)
        skipped = tuple(range(order, 2 * order - 1))
    else:
        for b in range(order - 2, -1, -1):
            machine.shuffle(regs)
            exchange_on_tag_bit(b)

    run = _finish(machine, skipped, routes0, instr0)
    if require_success and not run.success:
        raise RoutingError("permutation is not realizable by the "
                           "self-routing simulation (not in F(n))")
    return run


# ----------------------------------------------------------------------
# MCC
# ----------------------------------------------------------------------

def permute_mcc(machine: MCC, tags: PermutationLike,
                data: Optional[Sequence] = None, *,
                bpc_spec: Optional[BPCSpec] = None,
                omega: bool = False,
                inverse_omega: bool = False,
                require_success: bool = False) -> PermutationRun:
    """The Section III MCC algorithm: the CCC loop with each dimension
    ``b`` realized as an interchange between PEs ``2^{b mod q}`` apart
    (horizontally for ``b < q``, vertically otherwise).

    ``7 sqrt(N) - 8`` unit-routes for a general F(n) permutation.
    """
    _load(machine, tags, data)
    order = machine.dimensions
    skipped = _skip_positions(order, bpc_spec, omega, inverse_omega)
    skip_set = set(skipped)
    routes0 = machine.stats.unit_routes
    instr0 = machine.stats.route_instructions

    schedule = benes_dimension_schedule(order)
    for pos, b in enumerate(schedule):
        if pos in skip_set:
            continue
        tag_reg = machine.register(TAG)
        mask = [
            _bits.bit(i, b) == 0 and _bits.bit(tag_reg[i], b) == 1
            for i in range(machine.n_pes)
        ]
        machine.interchange((DATA, TAG), b, mask)

    run = _finish(machine, skipped, routes0, instr0)
    if require_success and not run.success:
        raise RoutingError("permutation is not realizable by the "
                           "self-routing simulation (not in F(n))")
    return run
