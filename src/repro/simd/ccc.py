"""The cube connected computer (CCC) — model 3 of Section I.

``N' = 2^n`` PEs; PE(i) connects to PE(i^{(b)}) for every dimension
``b`` (``i^{(b)}`` flips bit ``b`` of ``i``).  The Section III
permutation algorithm is a sequence of masked *interchanges* across the
dimensions ``0, 1, ..., n-2, n-1, n-2, ..., 0`` — a direct simulation
of the self-routing Benes network, one cube dimension per switch
stage.

The paper's cost note: if a record (data + tag) moves in one unit-route
the interchange costs 1; if it needs two transfers the costs double.
``routes_per_interchange`` selects the model (default 1).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..core import bits as _bits
from ..errors import MachineError
from .machine import Mask, SIMDMachine

__all__ = ["CCC"]


class CCC(SIMDMachine):
    """Cube connected computer on ``2^dimensions`` PEs."""

    model_name = "CCC"

    def __init__(self, dimensions: int, routes_per_interchange: int = 1):
        if dimensions < 1:
            raise MachineError(
                f"need at least one cube dimension, got {dimensions}"
            )
        if routes_per_interchange not in (1, 2):
            raise MachineError(
                "routes_per_interchange must be 1 or 2, got "
                f"{routes_per_interchange}"
            )
        super().__init__(1 << dimensions)
        self._dimensions = dimensions
        self._routes_per_interchange = routes_per_interchange

    @property
    def dimensions(self) -> int:
        """Cube dimensionality ``n`` (``N' = 2^n`` PEs)."""
        return self._dimensions

    def neighbor(self, pe: int, dim: int) -> int:
        """``pe^{(dim)}``: the PE across cube dimension ``dim``."""
        self._check_dim(dim)
        return _bits.flip_bit(pe, dim)

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < self._dimensions:
            raise MachineError(
                f"dimension {dim} out of range 0..{self._dimensions - 1}"
            )

    # ------------------------------------------------------------------
    # Routing primitives
    # ------------------------------------------------------------------

    def interchange(self, names: Sequence[str], dim: int,
                    pair_mask: Optional[Mask] = None) -> None:
        """Swap register contents between PE pairs across ``dim``.

        ``pair_mask`` is evaluated on the pair representative — the PE
        with bit ``dim`` equal to 0 (the Benes switch's *upper input*).
        Costs ``routes_per_interchange`` unit-routes.
        """
        self._check_dim(dim)
        checked = self._check_mask(pair_mask)
        self._apply_swap(names, lambda i: _bits.flip_bit(i, dim), checked)
        self._account_route(self._routes_per_interchange)

    def route_across(self, names: Sequence[str], dim: int,
                     mask: Optional[Mask] = None) -> None:
        """One-directional copy: each enabled PE sends its register
        contents to its ``dim`` neighbour (one unit-route)."""
        self._check_dim(dim)
        checked = self._check_mask(mask)
        self._apply_routing(
            names, lambda i: _bits.flip_bit(i, dim), checked
        )
        self._account_route(1)

    def compare_interchange(self, names: Sequence[str], key: str,
                            dim: int,
                            ascending_for: Callable[[int], bool]) -> None:
        """Bitonic compare-exchange across ``dim``: for each pair, sort
        the two ``key`` values (ascending when
        ``ascending_for(representative)`` is true), moving the other
        named registers alongside.  Costs one interchange."""
        self._check_dim(dim)
        keys = self.register(key)
        swap_mask: List[bool] = [False] * self.n_pes
        for i in range(self.n_pes):
            j = _bits.flip_bit(i, dim)
            if i < j:
                out_of_order = keys[i] > keys[j]
                swap_mask[i] = (out_of_order == ascending_for(i))
        regs = set(names) | {key}
        self._apply_swap(sorted(regs),
                         lambda i: _bits.flip_bit(i, dim), swap_mask)
        self._account_route(self._routes_per_interchange)
