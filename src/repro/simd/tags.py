"""Destination-tag generation from compact descriptors (Section III,
closing remarks).

The SIMD algorithms need the tag vector ``(D(0), ..., D(N-1))``
distributed one tag per PE.  When the permutation has a compact
representation broadcast in the instruction stream, each PE computes
its own tag locally — no PE-to-PE communication:

- a BPC ``A``-vector (``log N`` words): ``O(log N)`` local steps;
- a "p-ordering and cyclic shift" pair ``(p, k)``: ``O(1)`` steps.

Hence the total cost of a BPC permutation from its A-vector is still
``O(log N)`` on a CCC/PSC, and of an affine permutation ``O(1)`` setup
plus the routing.
"""

from __future__ import annotations

from ..core import bits as _bits
from ..errors import MachineError
from ..permclasses.bpc import BPCSpec
from .machine import SIMDMachine

__all__ = ["load_bpc_tags", "load_affine_tags", "load_explicit_tags"]

TAG = "D"


def load_bpc_tags(machine: SIMDMachine, spec: BPCSpec,
                  register: str = TAG) -> int:
    """Each PE computes its destination under the broadcast A-vector,
    one bit per step: ``order`` compute steps.

    Returns the number of steps charged.
    """
    order = spec.order
    if machine.n_pes != spec.size:
        raise MachineError(
            f"BPC spec for {spec.size} elements on {machine.n_pes} PEs"
        )
    machine.set_register(register, [0] * machine.n_pes)
    steps0 = machine.stats.compute_steps
    for j in range(order):
        position = spec.positions[j]
        complemented = spec.complemented[j]

        def accumulate(i: int, current, j=j, position=position,
                       complemented=complemented):
            source = _bits.bit(i, j) ^ int(complemented)
            return current | (source << position)

        reg = machine.register(register)
        machine.elementwise_indexed(
            register, lambda i: accumulate(i, reg[i])
        )
    return machine.stats.compute_steps - steps0


def load_affine_tags(machine: SIMDMachine, p: int, k: int,
                     register: str = TAG) -> int:
    """Each PE computes ``D(i) = (p*i + k) mod N`` in one step
    (``p`` odd so the result is a permutation).

    Returns the number of steps charged (always 1).
    """
    if p % 2 == 0:
        raise MachineError(f"p must be odd, got {p}")
    n = machine.n_pes
    steps0 = machine.stats.compute_steps
    machine.elementwise_indexed(register, lambda i: (p * i + k) % n)
    return machine.stats.compute_steps - steps0


def load_explicit_tags(machine: SIMDMachine, tags,
                       register: str = TAG) -> None:
    """Load a full tag vector (the no-compact-form case)."""
    machine.set_register(register, list(tags))
