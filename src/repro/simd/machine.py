"""SIMD machine framework (Section I models, Section III algorithms).

The paper's machines are SIMD: one instruction stream broadcast to
``N'`` processing elements (PEs), each with private registers, connected
by a fixed interconnection pattern.  :class:`SIMDMachine` provides the
shared substrate — named registers, enable masks, and the two cost
counters the paper uses:

- **unit-routes**: data movements between directly connected PEs
  (one broadcast routing instruction = one unit-route, regardless of
  how many PEs are enabled);
- **steps**: total broadcast instructions, including local compute.

Concrete interconnections (:mod:`repro.simd.cic`, ``ccc``, ``psc``,
``mcc``) add their routing primitives on top and account their own
unit-route costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import MachineError, MaskError

__all__ = ["SIMDMachine", "RouteStats"]

Mask = Sequence[bool]
Predicate = Callable[[int, "SIMDMachine"], bool]


@dataclass
class RouteStats:
    """Cost counters accumulated by a machine run."""

    unit_routes: int = 0
    route_instructions: int = 0
    compute_steps: int = 0

    @property
    def total_steps(self) -> int:
        """All broadcast instructions: routes + local compute."""
        return self.route_instructions + self.compute_steps

    def reset(self) -> None:
        """Zero every counter."""
        self.unit_routes = 0
        self.route_instructions = 0
        self.compute_steps = 0


class SIMDMachine:
    """``n_pes`` processing elements with named registers.

    Registers are dense Python lists indexed by PE number.  Subclasses
    implement the interconnection-specific routing primitives and call
    :meth:`_account_route` to charge them.
    """

    #: human-readable model name, overridden by subclasses.
    model_name = "SIMD"

    def __init__(self, n_pes: int):
        if n_pes < 1:
            raise MachineError(f"need at least one PE, got {n_pes}")
        self._n_pes = n_pes
        self._registers: Dict[str, list] = {}
        self.stats = RouteStats()

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------

    @property
    def n_pes(self) -> int:
        """Number of processing elements ``N'``."""
        return self._n_pes

    def set_register(self, name: str, values: Sequence) -> None:
        """Load ``values[i]`` into register ``name`` of PE ``i``."""
        if len(values) != self._n_pes:
            raise MachineError(
                f"{len(values)} values for {self._n_pes} PEs"
            )
        self._registers[name] = list(values)

    def register(self, name: str) -> list:
        """The live register list (mutations are visible to the
        machine; copy if you need a snapshot)."""
        try:
            return self._registers[name]
        except KeyError:
            raise MachineError(f"register {name!r} was never loaded")

    def read(self, name: str) -> Tuple:
        """Immutable snapshot of a register."""
        return tuple(self.register(name))

    def has_register(self, name: str) -> bool:
        """True iff the register has been loaded."""
        return name in self._registers

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------

    def full_mask(self) -> List[bool]:
        """Enable every PE."""
        return [True] * self._n_pes

    def mask_from(self, predicate: Predicate) -> List[bool]:
        """Evaluate ``predicate(pe, machine)`` on every PE."""
        return [predicate(i, self) for i in range(self._n_pes)]

    def _check_mask(self, mask: Optional[Mask]) -> List[bool]:
        if mask is None:
            return self.full_mask()
        if len(mask) != self._n_pes:
            raise MaskError(
                f"mask of length {len(mask)} for {self._n_pes} PEs"
            )
        return [bool(m) for m in mask]

    # ------------------------------------------------------------------
    # Local compute
    # ------------------------------------------------------------------

    def elementwise(self, out: str,
                    fn: Callable[..., object],
                    *sources: str,
                    mask: Optional[Mask] = None) -> None:
        """``out[i] = fn(src1[i], src2[i], ...)`` on enabled PEs;
        costs one compute step."""
        mask = self._check_mask(mask)
        inputs = [self.register(s) for s in sources]
        target = self._registers.setdefault(out, [None] * self._n_pes)
        for i in range(self._n_pes):
            if mask[i]:
                target[i] = fn(*(reg[i] for reg in inputs))
        self.stats.compute_steps += 1

    def elementwise_indexed(self, out: str,
                            fn: Callable[[int], object],
                            mask: Optional[Mask] = None) -> None:
        """``out[i] = fn(i)`` on enabled PEs (each PE knows its own
        index); costs one compute step."""
        mask = self._check_mask(mask)
        target = self._registers.setdefault(out, [None] * self._n_pes)
        for i in range(self._n_pes):
            if mask[i]:
                target[i] = fn(i)
        self.stats.compute_steps += 1

    # ------------------------------------------------------------------
    # Routing bookkeeping
    # ------------------------------------------------------------------

    def _account_route(self, unit_routes: int) -> None:
        """Charge one broadcast routing instruction costing
        ``unit_routes`` unit-routes."""
        self.stats.route_instructions += 1
        self.stats.unit_routes += unit_routes

    def _apply_routing(self, names: Sequence[str],
                       wiring: Callable[[int], int],
                       mask: List[bool]) -> None:
        """Move register contents: for enabled PE ``i``, the value in
        each named register travels to PE ``wiring(i)``.  Disabled PEs
        keep their value unless an enabled PE overwrites them."""
        for name in names:
            reg = self.register(name)
            new = list(reg)
            for i in range(self._n_pes):
                if mask[i]:
                    new[wiring(i)] = reg[i]
            self._registers[name] = new

    def _apply_swap(self, names: Sequence[str],
                    pairing: Callable[[int], int],
                    pair_enabled: List[bool]) -> None:
        """Interchange register contents between PE ``i`` and
        ``pairing(i)`` for every enabled pair; ``pair_enabled`` is read
        on the lower-numbered PE of each pair."""
        for name in names:
            reg = self.register(name)
            for i in range(self._n_pes):
                j = pairing(i)
                if i < j and pair_enabled[i]:
                    reg[i], reg[j] = reg[j], reg[i]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_pes={self._n_pes})"
