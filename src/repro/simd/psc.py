"""The perfect shuffle computer (PSC) — model 4 of Section I.

``N' = 2^n`` PEs with three connections each:

- **exchange**: PE(i) <-> PE(i^{(0)}) (flip bit 0);
- **shuffle**: PE(i) -> PE(rotate_left(i)) — the perfect shuffle;
- **unshuffle**: PE(i) -> PE(rotate_right(i)).

Each broadcast use of a connection is one unit-route.  The Section III
permutation algorithm runs in ``4 log N - 3`` unit-routes by unshuffling
between masked exchanges on the way "in" and shuffling on the way
"out" — the same Benes simulation as the CCC, with the cube dimension
rotated into bit 0 before every exchange.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import bits as _bits
from ..errors import MachineError
from .machine import Mask, SIMDMachine

__all__ = ["PSC"]


class PSC(SIMDMachine):
    """Perfect shuffle computer on ``2^dimensions`` PEs."""

    model_name = "PSC"

    def __init__(self, dimensions: int):
        if dimensions < 1:
            raise MachineError(
                f"need at least one index bit, got {dimensions}"
            )
        super().__init__(1 << dimensions)
        self._dimensions = dimensions

    @property
    def dimensions(self) -> int:
        """``n = log2 N'``."""
        return self._dimensions

    # ------------------------------------------------------------------
    # The three connections
    # ------------------------------------------------------------------

    def exchange(self, names: Sequence[str],
                 pair_mask: Optional[Mask] = None) -> None:
        """Swap registers between PE pairs differing in bit 0;
        ``pair_mask`` is read on the even-numbered PE of each pair.
        One unit-route."""
        checked = self._check_mask(pair_mask)
        self._apply_swap(names, lambda i: i ^ 1, checked)
        self._account_route(1)

    def shuffle(self, names: Sequence[str]) -> None:
        """Every PE sends its registers along the shuffle connection:
        PE(i) -> PE(rotate_left(i)).  One unit-route."""
        self._apply_routing(
            names,
            lambda i: _bits.rotate_left(i, self._dimensions),
            self.full_mask(),
        )
        self._account_route(1)

    def unshuffle(self, names: Sequence[str]) -> None:
        """Every PE sends its registers along the unshuffle connection:
        PE(i) -> PE(rotate_right(i)).  One unit-route."""
        self._apply_routing(
            names,
            lambda i: _bits.rotate_right(i, self._dimensions),
            self.full_mask(),
        )
        self._account_route(1)
