"""SIMD machine models (Section I) and the preprocessing-free
permutation algorithms that simulate the self-routing Benes network on
them (Section III)."""

from .ccc import CCC
from .cic import CIC
from .dual import DualNetworkComputer, DualRouteReport
from .machine import RouteStats, SIMDMachine
from .mcc import MCC
from .parallel_setup import (
    ParallelSetupRun,
    batch_parallel_setup,
    parallel_setup_states,
)
from .permute import (
    PermutationRun,
    benes_dimension_schedule,
    permute_ccc,
    permute_mcc,
    permute_psc,
)
from .psc import PSC
from .sort import (
    SortRun,
    bitonic_compare_count,
    sort_permute_ccc,
    sort_permute_psc,
)
from .tags import load_affine_tags, load_bpc_tags, load_explicit_tags

__all__ = [
    "CCC",
    "CIC",
    "DualNetworkComputer",
    "DualRouteReport",
    "MCC",
    "PSC",
    "ParallelSetupRun",
    "PermutationRun",
    "RouteStats",
    "SIMDMachine",
    "SortRun",
    "batch_parallel_setup",
    "benes_dimension_schedule",
    "bitonic_compare_count",
    "load_affine_tags",
    "load_bpc_tags",
    "load_explicit_tags",
    "parallel_setup_states",
    "permute_ccc",
    "permute_mcc",
    "permute_psc",
    "sort_permute_ccc",
    "sort_permute_psc",
]
