"""Data-parallel Benes setup (the paper's Section I comparison point).

The paper motivates self-routing by quoting the *parallel* setup
algorithms of Nassimi & Sahni [7]: even with an N-PE machine computing
the switch settings in parallel, the setup still dominates the
O(log N) transit — the self-routing scheme removes it altogether for
class F.

This module implements a data-parallel looping setup in the SIMD style
of [7] on the completely-interconnected model (CIC):

per recursion level (log N levels, all same-level sub-problems
processed simultaneously):

1. one routing step computes the inverse permutation (PE ``t`` sends
   ``t`` to PE ``D(t)``);
2. each PE computes its *looping successor*
   ``succ(t) = inv[D[t XOR 1] XOR 1]`` locally — the chain the serial
   algorithm walks;
3. **pointer jumping** (O(log N) steps) elects each succ-orbit's
   leader; the orbit of ``t`` and the orbit of its input partner
   ``t XOR 1`` are always distinct, so comparing the two leaders
   yields a consistent sub-network side for every input at once;
4. O(1) steps derive the first/last column switch states and route
   each tag to its sub-problem position for the next level.

Total: O(log^2 N) broadcast steps on a CIC ([7] reaches O(log N) with
a more intricate algorithm; either way the asymptotic point stands —
see benchmark CLM-SETUP).  The computed states plug into
:meth:`repro.core.benes.BenesNetwork.route_with_states` and are tested
to realize every permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..core.bits import log2_exact
from ..core.permutation import Permutation

__all__ = ["ParallelSetupRun", "batch_parallel_setup",
           "parallel_setup_states"]

PermutationLike = Union[Permutation, Sequence[int]]


@dataclass
class _StepCounter:
    """Broadcast-instruction accounting in the CIC cost model."""

    route_steps: int = 0
    compute_steps: int = 0

    @property
    def total_steps(self) -> int:
        return self.route_steps + self.compute_steps


@dataclass(frozen=True)
class ParallelSetupRun:
    """Result of a parallel setup computation.

    Attributes:
        states: per-column switch states for
            :meth:`BenesNetwork.route_with_states`.
        route_steps: CIC routing instructions used.
        compute_steps: local (per-PE, broadcast) compute instructions.
    """

    states: List[List[int]]
    route_steps: int
    compute_steps: int

    @property
    def total_steps(self) -> int:
        """All broadcast instructions."""
        return self.route_steps + self.compute_steps


def _leaders(succ: List[int], counter: _StepCounter) -> List[int]:
    """Orbit leaders (minimum PE index per succ-orbit) by pointer
    jumping: O(log N) doubling steps, each a parallel route + min."""
    n = len(succ)
    leader = list(range(n))
    jump = list(succ)
    steps = max(1, log2_exact(n)) if n > 1 else 1
    for _ in range(steps):
        # every PE reads its jump target's (leader, jump) in one
        # routing step, then updates locally
        leader = [min(leader[t], leader[jump[t]]) for t in range(n)]
        jump = [jump[jump[t]] for t in range(n)]
        counter.route_steps += 1
        counter.compute_steps += 1
    return leader


def _level(tags: List[int], counter: _StepCounter
           ) -> Tuple[List[int], List[int], List[int], List[int]]:
    """One parallel looping level on a (sub-)problem of size
    ``len(tags)``: returns (first_states, last_states, upper_tags,
    lower_tags)."""
    n = len(tags)
    inverse = [0] * n
    for t, d in enumerate(tags):
        inverse[d] = t
    counter.route_steps += 1  # PE t sends t to PE D(t)

    succ = [inverse[tags[t ^ 1] ^ 1] for t in range(n)]
    counter.compute_steps += 1

    leader = _leaders(succ, counter)
    # the partner's orbit leader, fetched across the exchange pairing
    side = [
        0 if leader[t] < leader[t ^ 1] else 1
        for t in range(n)
    ]
    counter.route_steps += 1   # fetch partner leader
    counter.compute_steps += 1

    half = n // 2
    first = [side[2 * i] for i in range(half)]
    last = [side[inverse[2 * j]] for j in range(half)]
    counter.route_steps += 1   # gather last-column states via inverse
    counter.compute_steps += 1

    upper = [0] * half
    lower = [0] * half
    for t in range(n):
        if side[t] == 0:
            upper[t >> 1] = tags[t] >> 1
        else:
            lower[t >> 1] = tags[t] >> 1
    counter.route_steps += 1   # route tags to sub-problem positions
    return first, last, upper, lower


def _setup(tags: List[int], order: int,
           counter: _StepCounter) -> List[List[int]]:
    if order == 1:
        counter.compute_steps += 1
        return [[0 if tags[0] == 0 else 1]]
    first, last, upper, lower = _level(tags, counter)
    # Both sub-problems are solved by the same broadcast instruction
    # stream (that is the SIMD point), so charge the recursion once and
    # solve the sibling without additional steps.
    upper_states = _setup(upper, order - 1, counter)
    silent = _StepCounter()
    lower_states = _setup(lower, order - 1, silent)
    middle = [u + l for u, l in zip(upper_states, lower_states)]
    return [first] + middle + [last]


def parallel_setup_states(perm: PermutationLike) -> ParallelSetupRun:
    """Compute Benes switch states for an arbitrary permutation with
    the data-parallel looping algorithm.

    >>> from repro.core import BenesNetwork
    >>> run = parallel_setup_states([1, 3, 2, 0])
    >>> BenesNetwork(2).route_with_states(run.states).realized
    Permutation((1, 3, 2, 0))
    """
    perm = perm if isinstance(perm, Permutation) else Permutation(perm)
    order = log2_exact(perm.size)
    counter = _StepCounter()
    states = _setup(list(perm.as_tuple()), order, counter)
    return ParallelSetupRun(
        states=states,
        route_steps=counter.route_steps,
        compute_steps=counter.compute_steps,
    )


_STEP_MODEL: Dict[int, Tuple[int, int]] = {}


def _step_counts(order: int) -> Tuple[int, int]:
    """(route_steps, compute_steps) of the CIC model at one order.  The
    broadcast-instruction counts are data-independent — every level
    issues the same instruction stream regardless of the permutation —
    so one scalar run on the identity pins them for the whole batch."""
    if order not in _STEP_MODEL:
        run = parallel_setup_states(tuple(range(1 << order)))
        _STEP_MODEL[order] = (run.route_steps, run.compute_steps)
    return _STEP_MODEL[order]


def batch_parallel_setup(perms: Sequence[PermutationLike], *,
                         parallel=False) -> List[ParallelSetupRun]:
    """Batched :func:`parallel_setup_states`: one
    :class:`ParallelSetupRun` per input, same states and step counts.

    The per-element states come from the vectorized batch looping
    engine (:func:`repro.accel.setup.batch_setup_states`, byte-identical
    to the serial and CIC walks — see ``tests/test_accel_setup.py``);
    the CIC step counters are data-independent, so they are read off
    one cached scalar run per order.  ``parallel`` forwards to the
    shard executor for batches above its threshold.
    """
    from ..accel.setup import batch_setup_states

    rows = [
        p.as_tuple() if isinstance(p, Permutation) else tuple(p)
        for p in perms
    ]
    if not rows:
        return []
    order = log2_exact(len(rows[0]))
    states = batch_setup_states(order, rows, parallel=parallel)
    route_steps, compute_steps = _step_counts(order)
    if not isinstance(states, list):  # NumPy path: (B, 2n-1, N/2)
        states = [instance.tolist() for instance in states]
    return [
        ParallelSetupRun(states=instance, route_steps=route_steps,
                         compute_steps=compute_steps)
        for instance in states
    ]
