"""ASCII renderings of the paper's figures.

- :func:`render_route` reproduces the style of Figs. 4 and 5: the
  binary destination tag carried on every row at every stage, with the
  state each switch took.
- :func:`render_topology` summarizes Fig. 1 (stages, links, control
  bits).
- :func:`render_switch` draws Fig. 2's two switch states.
- :func:`render_ccc_trace` prints Fig. 6's ``D(i)^(k)`` table from a
  traced CCC run.

Everything returns plain strings, so the figures drop into terminals,
logs and EXPERIMENTS.md unchanged.
"""

from __future__ import annotations

from ..core.routing import RouteResult
from ..core.switch import SwitchState
from ..errors import InvalidParameterError
from ..simd.permute import PermutationRun, benes_dimension_schedule

__all__ = [
    "render_route",
    "render_topology",
    "render_switch",
    "render_ccc_trace",
    "render_network_diagram",
    "format_binary",
]


def format_binary(value: int, width: int) -> str:
    """``value`` as a zero-padded ``width``-bit string."""
    return format(value, f"0{width}b")


def render_switch() -> str:
    """Fig. 2: the two states of a binary switch."""
    return (
        "state 0 (straight)        state 1 (cross)\n"
        "  a ---[====]--- a          a ---[\\  /]--- b\n"
        "       [    ]                    [ \\/ ]\n"
        "       [    ]                    [ /\\ ]\n"
        "  b ---[====]--- b          b ---[/  \\]--- a"
    )


def render_topology(order: int) -> str:
    """Fig. 1 summary for ``B(order)``: the stage/link layout and the
    per-stage control bits of the self-routing scheme (Fig. 3)."""
    from ..core.topology import BenesTopology

    topo = BenesTopology.build(order)
    lines = [
        f"B({order}): N = {topo.n_terminals} terminals, "
        f"{topo.n_stages} stages x {topo.switches_per_stage} switches "
        f"= {topo.n_switches} binary switches",
        "",
        "stage   control tag bit   following link",
    ]
    for stage in range(topo.n_stages):
        if stage < topo.n_stages - 1:
            link = topo.links[stage]
            if stage == 0:
                kind = "unshuffle (into sub-networks)"
            elif stage == topo.n_stages - 2:
                kind = "shuffle (out of sub-networks)"
            else:
                kind = "nested sub-network link"
            link_text = f"{kind}: {link}"
        else:
            link_text = "(outputs)"
        lines.append(
            f"{stage:>5}   {topo.control_bit(stage):>15}   {link_text}"
        )
    return "\n".join(lines)


def _state_char(state: SwitchState) -> str:
    return "X" if state else "="


def render_route(result: RouteResult, order: int,
                 binary: bool = True) -> str:
    """Figs. 4/5-style rendering of a traced routing pass.

    Each stage shows the destination tag on every input row (binary by
    default, as in Fig. 4) and the state of each switch (``=`` straight,
    ``X`` cross).  Requires the result to carry stage traces
    (``route(..., trace=True)``).
    """
    if not result.stages:
        raise InvalidParameterError(
            "render_route needs stage traces; route with trace=True"
        )
    n_rows = len(result.requested)

    def fmt(tag: int) -> str:
        return format_binary(tag, order) if binary else str(tag)

    width = max(order if binary else len(str(n_rows - 1)), 3)
    header_cells = []
    for st in result.stages:
        bit_txt = ("ext" if st.control_bit is None
                   else f"bit {st.control_bit}")
        header_cells.append(f"s{st.stage}({bit_txt})".center(width + 4))
    lines = ["in".center(6) + " " + " ".join(header_cells) +
             " " + "out".center(6)]
    for row in range(n_rows):
        cells = []
        for st in result.stages:
            state = st.states[row // 2]
            mark = _state_char(state) if row % 2 == 0 else " "
            cells.append(f"{fmt(st.input_tags[row]):>{width}} |{mark}|")
        arrived = result.arrived_tags()[row]
        ok = "ok" if arrived == row else "**"
        lines.append(
            f"{row:>4}   " + " ".join(cells) +
            f"  {fmt(arrived):>4}{ok if arrived != row else ''}"
        )
    lines.append("")
    lines.append(
        f"success: {result.success}"
        + ("" if result.success
           else f"  (misrouted outputs: {list(result.misrouted)})")
    )
    return "\n".join(lines)


def render_network_diagram(order: int, max_order: int = 4) -> str:
    """A Fig. 1-style wire diagram of ``B(order)``.

    Each row is one of the ``N`` lines; each stage shows its switch
    boxes (``[ ]`` spanning two rows), and the columns between stages
    print the row each wire continues on — the unshuffle into and
    shuffle out of the two ``B(n-1)`` sub-networks, with the nested
    links in between.  Practical for small orders (guarded at
    ``max_order``).
    """
    from ..core.topology import BenesTopology

    if order > max_order:
        raise InvalidParameterError(
            f"diagram limited to order <= {max_order} for legibility"
        )
    topo = BenesTopology.build(order)
    n_rows = topo.n_terminals
    lines = [
        f"B({order}) — {topo.n_stages} stages of "
        f"{topo.switches_per_stage} switches; links are "
        "'source row > destination row'",
        "",
    ]
    for row in range(n_rows):
        cells = [f"{row:>2} "]
        for stage in range(topo.n_stages):
            box = "[‾]" if row % 2 == 0 else "[_]"
            cells.append(box)
            if stage < topo.n_stages - 1:
                cells.append(f" >{topo.links[stage][row]:>2} ")
        cells.append(f" {row:>2}")
        lines.append("".join(cells))
    lines.append("")
    lines.append(
        "control bits per stage: "
        + ", ".join(str(b) for b in topo.control_bits())
    )
    return "\n".join(lines)


def render_ccc_trace(run: PermutationRun, order: int) -> str:
    """Fig. 6: the destination register ``D(i)`` in every PE after each
    iteration ``k`` of the CCC loop (requires
    ``permute_ccc(..., trace=True)``)."""
    if not run.tag_history:
        raise InvalidParameterError(
            "render_ccc_trace needs tag history; run with trace=True"
        )
    schedule = benes_dimension_schedule(order)
    n_pes = len(run.tag_history[0])
    width = max(order, 5)
    header = ["  PE"] + ["D(i)".center(width)] + [
        f"D(i)^{k + 1}".center(width) for k in range(len(schedule))
    ]
    lines = ["iteration bits b: " +
             ", ".join(str(b) for b in schedule),
             " | ".join(header)]
    for pe in range(n_pes):
        cells = [f"{pe:>4}"]
        for snapshot in run.tag_history:
            cells.append(format_binary(snapshot[pe], order).center(width))
        lines.append(" | ".join(cells))
    lines.append("")
    lines.append(f"success: {run.success}; "
                 f"unit-routes: {run.unit_routes}")
    return "\n".join(lines)
