"""ASCII reproductions of the paper's figures."""

from .ascii_art import (
    format_binary,
    render_ccc_trace,
    render_network_diagram,
    render_route,
    render_switch,
    render_topology,
)

__all__ = [
    "format_binary",
    "render_ccc_trace",
    "render_network_diagram",
    "render_route",
    "render_switch",
    "render_topology",
]
