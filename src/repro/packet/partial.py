"""The normalized :class:`PartialMapping` call-model type.

A partial permutation is the packet layer's unit of demand: ``k`` of
the ``N`` inputs each request one distinct output (``src -> dst``
calls), the rest are idle.  Two constructors cover both surfaces the
repo speaks:

- :meth:`PartialMapping.from_pairs` — the call model proper, a list of
  ``(src, dst)`` pairs;
- :meth:`PartialMapping.from_dense` — the wire/engine form, a dense
  length-``N`` row whose idle lanes hold :data:`~repro.accel.partial.
  IDLE` (``-1``); this is the exact shape a ``packet`` op carries in
  its ``tags`` field and the shape every masked engine kernel
  consumes.

Normalization is canonical on construction (pairs sorted by source,
validated dense form), so two equal mappings compare equal and encode
to equal wire bytes.  :func:`route_partial` is the subsystem's
one-call entry: mappings in, per-lane masked verdicts out, through any
registered engine via :func:`repro.accel.batch_route_partial`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..accel.partial import (
    IDLE,
    PartialBatchResult,
    batch_route_partial,
    complete_partial_row,
)
from ..core.bits import log2_exact
from ..errors import InvalidParameterError

__all__ = ["PartialMapping", "route_partial"]

Pair = Tuple[int, int]


@dataclass(frozen=True)
class PartialMapping:
    """``k`` distinct ``src -> dst`` calls on a ``2^order``-port
    network, canonically normalized (pairs sorted by source).

    Attributes:
        order: network order ``n``; ``N = 2^n`` ports.
        pairs: the active calls, sorted by source, sources and
            destinations each distinct.
    """

    order: int
    pairs: Tuple[Pair, ...]

    def __post_init__(self):
        if self.order < 1:
            raise InvalidParameterError(
                f"order must be >= 1, got {self.order}")
        n = 1 << self.order
        pairs = tuple(sorted(
            (int(src), int(dst)) for src, dst in self.pairs))
        srcs = [s for s, _ in pairs]
        dsts = [d for _, d in pairs]
        for value, what in ((srcs, "source"), (dsts, "destination")):
            if any(not 0 <= v < n for v in value):
                raise InvalidParameterError(
                    f"{what}s must lie in [0, {n})")
            if len(set(value)) != len(value):
                raise InvalidParameterError(
                    f"duplicate {what} in partial mapping")
        object.__setattr__(self, "pairs", pairs)

    @classmethod
    def from_pairs(cls, order: int,
                   pairs: Sequence[Sequence[int]]) -> "PartialMapping":
        """Build from ``(src, dst)`` call pairs."""
        return cls(order=order,
                   pairs=tuple((int(s), int(d)) for s, d in pairs))

    @classmethod
    def from_dense(cls, row: Sequence[int]) -> "PartialMapping":
        """Build from a dense row with :data:`IDLE` idle lanes (the
        wire / engine-kernel form)."""
        order = log2_exact(len(row))
        pairs = [(src, int(dst)) for src, dst in enumerate(row)
                 if int(dst) != IDLE]
        return cls(order=order, pairs=tuple(pairs))

    @property
    def n(self) -> int:
        """Port count ``N = 2^order``."""
        return 1 << self.order

    @property
    def k(self) -> int:
        """Number of active calls."""
        return len(self.pairs)

    def to_dense(self) -> Tuple[int, ...]:
        """The dense length-``N`` row (idle lanes :data:`IDLE`)."""
        row = [IDLE] * self.n
        for src, dst in self.pairs:
            row[src] = dst
        return tuple(row)

    def complete(self) -> Tuple[int, ...]:
        """The canonical full-permutation completion this mapping
        routes as (idle inputs take the unused outputs in increasing
        order)."""
        return complete_partial_row(self.to_dense())


def _as_dense_rows(mappings) -> List[Tuple[int, ...]]:
    rows: List[Tuple[int, ...]] = []
    for mapping in mappings:
        if isinstance(mapping, PartialMapping):
            rows.append(mapping.to_dense())
        else:
            rows.append(tuple(int(v) for v in mapping))
    return rows


def route_partial(mappings: Sequence[Union[PartialMapping,
                                           Sequence[int]]], *,
                  omega_mode: bool = False,
                  stuck_switches: Optional[dict] = None,
                  parallel: object = False,
                  engine: Optional[str] = None) -> PartialBatchResult:
    """Route a batch of partial mappings (``PartialMapping`` objects
    or dense rows, freely mixed) through any registered engine and
    return the masked per-lane verdicts."""
    return batch_route_partial(
        _as_dense_rows(mappings), omega_mode=omega_mode,
        stuck_switches=stuck_switches, parallel=parallel,
        engine=engine)
