"""Time-stepped packet simulation over the Benes pipeline transit model.

The paper's Section IV clocks the network as ``2 log N - 1`` pipeline
register columns; :class:`~repro.core.pipeline.PipelinedBenes` models
that for conflict-free permutation waves.  This module generalizes the
same clocked transit to the *dynamic* workload class of "A Benes
Packet Network" (Huang & Walrand): packets arrive over time, only some
inputs are active, and conflicts are resolved by **buffering** instead
of by the offline setup algorithm.

Model, per simulated tick:

- **injection** — each input terminal independently offers a packet
  with probability ``offered_load`` (uniform random destination), or
  an explicit arrival schedule drives it; a full input queue drops the
  arrival at the door (``dropped_inject``);
- **transit** — stages advance **last column first**, so a packet
  moves at most one column per tick — exactly the pipeline-register
  discipline (a conflict-free packet's latency is the paper's
  ``2 log N - 1`` pipeline depth, which ``tests/test_packet.py`` pins
  against :class:`~repro.core.pipeline.PipelinedBenes`);
- **switching** — each 2x2 switch forwards at most one packet per
  output port per tick.  A packet requests the port whose parity its
  routing policy picks: ``dest`` reads bit ``min(s, 2n-2-s)`` of its
  own destination tag in every column (purely self-routing — correct
  from any row, verified exhaustively in tests), ``random`` uses
  seeded random bits through the first ``n - 1`` distribution columns
  and destination bits thereafter (the Benes packet network's
  load-balancing policy);
- **contention** — when two eligible packets want one port, a seeded
  rotation of the FIFO scan order arbitrates (deterministic given the
  seed, fair across ticks); losers stay queued, bump their retry
  count, and back off ``backoff_base`` ticks (doubling per retry when
  ``backoff_exp``) before becoming eligible again.  A packet that
  loses more than ``max_retries`` times is dropped
  (``dropped_retry``).  A full downstream queue blocks the move the
  same way (``blocked``);
- **delivery** — a packet leaving the last column at row ``r`` exits
  at output ``r``; both policies provably land every packet at its own
  destination, so ``misrouted`` stays zero (kept as a checked
  invariant, not an assumption).

After the ``ticks`` injection window the network **drains**: ticks
continue without injection until every queue is empty (or the safety
cap trips — survivors are reported ``stranded``).  Metrics flow
through :mod:`repro.obs` under ``packet.*`` (see DESIGN.md's metric
catalogue) and the whole run nests under one ``packet.sim`` span, so
``benes packet --profile`` and ``BENES_TRACE`` reassemble a run into
one trace tree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..accel.plans import cached_topology
from ..errors import InvalidParameterError
from ..obs import spans as _spans

__all__ = [
    "PacketSimConfig",
    "PacketSimReport",
    "StageStats",
    "saturation_sweep",
    "simulate",
]

#: Routing policies: own-destination-bit everywhere, or seeded random
#: bits through the distribution half (Benes packet network style).
POLICIES = ("dest", "random")


@dataclass(frozen=True)
class PacketSimConfig:
    """One packet-simulation run, fully determined by its fields.

    Attributes:
        order: network order ``n`` (``N = 2^n`` terminals).
        ticks: injection window length in clock ticks.
        offered_load: per-input injection probability per tick
            (ignored when an explicit arrival schedule drives
            :func:`simulate`).
        queue_capacity: per-switch buffer bound (packets).
        max_retries: contention/blocking losses a packet survives
            before being dropped.
        backoff_base: ticks a loser waits before re-arbitrating
            (0 = retry next tick).
        backoff_exp: double the backoff per consecutive loss.
        policy: ``dest`` or ``random`` (see module docstring).
        seed: drives traffic, random-policy bits, and arbitration.
        drain_limit: safety cap on extra drain ticks (``None`` = a
            generous computed bound).
    """

    order: int
    ticks: int = 512
    offered_load: float = 0.5
    queue_capacity: int = 4
    max_retries: int = 16
    backoff_base: int = 0
    backoff_exp: bool = False
    policy: str = "dest"
    seed: int = 0
    drain_limit: Optional[int] = None

    def __post_init__(self):
        if self.order < 1:
            raise InvalidParameterError(
                f"order must be >= 1, got {self.order}")
        if self.ticks < 1:
            raise InvalidParameterError(
                f"ticks must be >= 1, got {self.ticks}")
        if not 0.0 <= self.offered_load <= 1.0:
            raise InvalidParameterError(
                "offered_load must lie in [0, 1], got "
                f"{self.offered_load}")
        if self.queue_capacity < 1:
            raise InvalidParameterError(
                f"queue_capacity must be >= 1, got "
                f"{self.queue_capacity}")
        if self.max_retries < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise InvalidParameterError(
                f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.policy not in POLICIES:
            raise InvalidParameterError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{', '.join(POLICIES)}")


@dataclass
class StageStats:
    """Per-column congestion tallies."""

    stage: int
    contention: int = 0
    blocked: int = 0
    dropped: int = 0
    max_occupancy: int = 0
    occupancy_sum: int = 0

    def to_dict(self, total_ticks: int) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "contention": self.contention,
            "blocked": self.blocked,
            "dropped": self.dropped,
            "max_occupancy": self.max_occupancy,
            "mean_occupancy": round(
                self.occupancy_sum / max(1, total_ticks), 4),
        }


@dataclass
class PacketSimReport:
    """Everything one simulation run measured, JSON-ready."""

    config: PacketSimConfig
    total_ticks: int = 0
    offered: int = 0
    injected: int = 0
    delivered: int = 0
    misrouted: int = 0
    dropped_inject: int = 0
    dropped_retry: int = 0
    stranded: int = 0
    contention: int = 0
    blocked: int = 0
    latencies: List[int] = field(default_factory=list)
    per_stage: List[StageStats] = field(default_factory=list)

    @property
    def dropped(self) -> int:
        return self.dropped_inject + self.dropped_retry

    @property
    def throughput(self) -> float:
        """Delivered packets per input per injection tick."""
        n = 1 << self.config.order
        return self.delivered / max(1, self.config.ticks * n)

    @property
    def accepted_load(self) -> float:
        n = 1 << self.config.order
        return self.injected / max(1, self.config.ticks * n)

    @property
    def drop_rate(self) -> float:
        return self.dropped / max(1, self.offered)

    def _latency_quantile(self, q: float) -> Optional[int]:
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1,
                    max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[index]

    @property
    def latency_mean(self) -> Optional[float]:
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    def to_dict(self) -> Dict[str, object]:
        mean = self.latency_mean
        return {
            "order": self.config.order,
            "ticks": self.config.ticks,
            "offered_load": self.config.offered_load,
            "queue_capacity": self.config.queue_capacity,
            "max_retries": self.config.max_retries,
            "backoff_base": self.config.backoff_base,
            "backoff_exp": self.config.backoff_exp,
            "policy": self.config.policy,
            "seed": self.config.seed,
            "total_ticks": self.total_ticks,
            "offered": self.offered,
            "injected": self.injected,
            "delivered": self.delivered,
            "misrouted": self.misrouted,
            "dropped_inject": self.dropped_inject,
            "dropped_retry": self.dropped_retry,
            "stranded": self.stranded,
            "contention": self.contention,
            "blocked": self.blocked,
            "throughput": round(self.throughput, 6),
            "accepted_load": round(self.accepted_load, 6),
            "drop_rate": round(self.drop_rate, 6),
            "latency_min": min(self.latencies) if self.latencies
            else None,
            "latency_mean": round(mean, 4) if mean is not None
            else None,
            "latency_p50": self._latency_quantile(0.50),
            "latency_p99": self._latency_quantile(0.99),
            "latency_max": max(self.latencies) if self.latencies
            else None,
            "per_stage": [s.to_dict(self.total_ticks)
                          for s in self.per_stage],
        }


class _Packet:
    __slots__ = ("src", "dst", "injected_at", "retries",
                 "eligible_at", "rand_bits")

    def __init__(self, src: int, dst: int, injected_at: int,
                 rand_bits: int):
        self.src = src
        self.dst = dst
        self.injected_at = injected_at
        self.retries = 0
        self.eligible_at = injected_at
        self.rand_bits = rand_bits


def _backoff_delay(config: PacketSimConfig, retries: int) -> int:
    if config.backoff_base == 0:
        return 0
    if config.backoff_exp:
        return config.backoff_base * (1 << min(retries - 1, 16))
    return config.backoff_base


def simulate(config: PacketSimConfig,
             arrivals: Optional[Iterable[Tuple[int, int, int]]] = None
             ) -> PacketSimReport:
    """Run one packet simulation.

    ``arrivals`` optionally replaces Bernoulli injection with an
    explicit ``(tick, src, dst)`` schedule (the deterministic-wave
    tests and trace replays use this); ``offered_load`` is then
    ignored.  Same config, same schedule, same report — byte for
    byte."""
    order = config.order
    n = 1 << order
    half = max(1, n // 2)
    topo = cached_topology(order)
    n_stages = topo.n_stages
    ctrl_bits = [min(s, 2 * order - 2 - s) for s in range(n_stages)]
    dist_stages = order - 1  # the random policy's distribution half

    traffic = random.Random(config.seed)
    arbiter = random.Random(config.seed ^ 0x9E3779B9)

    schedule: Optional[Dict[int, List[Tuple[int, int]]]] = None
    if arrivals is not None:
        schedule = {}
        for tick, src, dst in arrivals:
            tick, src, dst = int(tick), int(src), int(dst)
            if not 0 <= src < n or not 0 <= dst < n:
                raise InvalidParameterError(
                    f"arrival ({tick}, {src}, {dst}) out of range "
                    f"for N={n}")
            if tick < 0:
                raise InvalidParameterError(
                    "arrival ticks must be >= 0")
            schedule.setdefault(tick, []).append((src, dst))

    queues: List[List[List[_Packet]]] = [
        [[] for _ in range(half)] for _ in range(n_stages)
    ]
    report = PacketSimReport(config=config)
    report.per_stage = [StageStats(stage=s) for s in range(n_stages)]
    metrics_on = _obs.enabled()

    def new_packet(src: int, dst: int, tick: int) -> _Packet:
        bits = 0
        if config.policy == "random" and dist_stages > 0:
            bits = traffic.getrandbits(dist_stages)
        return _Packet(src, dst, tick, bits)

    def desired_parity(packet: _Packet, stage: int) -> int:
        if config.policy == "random" and stage < dist_stages:
            return (packet.rand_bits >> stage) & 1
        return (packet.dst >> ctrl_bits[stage]) & 1

    def inject(tick: int) -> None:
        if schedule is not None:
            offers = schedule.get(tick, ())
        else:
            offers = []
            for src in range(n):
                if traffic.random() < config.offered_load:
                    offers.append((src, traffic.randrange(n)))
        for src, dst in offers:
            report.offered += 1
            if metrics_on:
                _obs.inc("packet.offered")
            queue = queues[0][src // 2]
            if len(queue) >= config.queue_capacity:
                report.dropped_inject += 1
                report.per_stage[0].dropped += 1
                if metrics_on:
                    _obs.inc("packet.dropped.inject")
                _obs.trace_event("packet.drop", reason="inject",
                                 tick=tick, src=src, dst=dst)
                continue
            queue.append(new_packet(src, dst, tick))
            report.injected += 1
            if metrics_on:
                _obs.inc("packet.injected")

    def lose(packet: _Packet, stage: int, tick: int,
             reason: str) -> bool:
        """Record a contention/blocking loss; True when the packet is
        dropped (caller removes it from its queue)."""
        stats = report.per_stage[stage]
        if reason == "contention":
            report.contention += 1
            stats.contention += 1
            if metrics_on:
                _obs.inc("packet.contention")
        else:
            report.blocked += 1
            stats.blocked += 1
            if metrics_on:
                _obs.inc("packet.blocked")
        packet.retries += 1
        if packet.retries > config.max_retries:
            report.dropped_retry += 1
            stats.dropped += 1
            if metrics_on:
                _obs.inc("packet.dropped.retry")
            _obs.trace_event("packet.drop", reason="retry", tick=tick,
                             stage=stage, src=packet.src,
                             dst=packet.dst)
            return True
        packet.eligible_at = tick + 1 + _backoff_delay(
            config, packet.retries)
        return False

    def advance(tick: int) -> None:
        # Last column first: a moved packet lands in a column already
        # processed this tick, so everything advances at most one
        # register per tick — the pipeline discipline.
        for stage in range(n_stages - 1, -1, -1):
            last = stage == n_stages - 1
            links = None if last else topo.links[stage]
            for switch in range(half):
                queue = queues[stage][switch]
                if not queue:
                    continue
                scan = list(range(len(queue)))
                if len(scan) > 1:
                    # seeded rotation: deterministic, fair arbitration
                    rot = arbiter.randrange(len(scan))
                    scan = scan[rot:] + scan[:rot]
                ports_taken = [False, False]
                gone: set = set()
                for i in scan:
                    packet = queue[i]
                    if packet.eligible_at > tick:
                        continue
                    parity = desired_parity(packet, stage)
                    if ports_taken[parity]:
                        if lose(packet, stage, tick, "contention"):
                            gone.add(i)
                        continue
                    out_row = 2 * switch + parity
                    if last:
                        ports_taken[parity] = True
                        gone.add(i)
                        latency = tick - packet.injected_at + 1
                        if out_row == packet.dst:
                            report.delivered += 1
                            report.latencies.append(latency)
                            if metrics_on:
                                _obs.inc("packet.delivered")
                                _obs.observe("packet.latency_ticks",
                                             latency,
                                             _obs.POW2_BOUNDS)
                        else:  # checked invariant, never expected
                            report.misrouted += 1
                            if metrics_on:
                                _obs.inc("packet.misrouted")
                        continue
                    next_row = links[out_row]
                    next_queue = queues[stage + 1][next_row // 2]
                    if len(next_queue) >= config.queue_capacity:
                        ports_taken[parity] = True
                        if lose(packet, stage, tick, "blocked"):
                            gone.add(i)
                        continue
                    ports_taken[parity] = True
                    gone.add(i)
                    next_queue.append(packet)
                if gone:
                    queues[stage][switch] = [
                        p for i, p in enumerate(queue)
                        if i not in gone
                    ]

    def occupancy(tick: int) -> int:
        total = 0
        for stage in range(n_stages):
            stage_total = sum(len(q) for q in queues[stage])
            stats = report.per_stage[stage]
            stats.occupancy_sum += stage_total
            stats.max_occupancy = max(stats.max_occupancy, stage_total)
            total += stage_total
        if metrics_on:
            _obs.observe("packet.queue_occupancy", total,
                         _obs.POW2_BOUNDS)
        return total

    drain_limit = config.drain_limit
    if drain_limit is None:
        # Worst case every buffered packet serializes through one
        # port with maximal backoff between attempts.
        per_retry = 1 + _backoff_delay(config, config.max_retries)
        drain_limit = (n_stages * half * config.queue_capacity
                       * (config.max_retries + 1) * per_retry + n_stages)

    with _spans.span("packet.sim", order=order, ticks=config.ticks,
                     offered_load=config.offered_load,
                     policy=config.policy, seed=config.seed):
        tick = 0
        while tick < config.ticks:
            inject(tick)
            advance(tick)
            occupancy(tick)
            tick += 1
        extra = 0
        while extra < drain_limit:
            if not any(q for stage in queues for q in stage):
                break
            advance(tick)
            occupancy(tick)
            tick += 1
            extra += 1
        report.total_ticks = tick
        report.stranded = sum(
            len(q) for stage in queues for q in stage)
        if metrics_on and report.stranded:
            _obs.inc("packet.stranded", report.stranded)
    return report


def saturation_sweep(loads: Sequence[float],
                     **config_kwargs) -> List[PacketSimReport]:
    """One :func:`simulate` run per offered load, shared config — the
    saturation curve ``benchmarks/bench_packet.py`` plots."""
    reports = []
    for load in loads:
        config = PacketSimConfig(offered_load=float(load),
                                 **config_kwargs)
        reports.append(simulate(config))
    return reports
