"""``repro.packet`` — partial permutations and packet-switched routing.

Every other surface in this repository routes *full one-shot
permutations*; this package opens the dynamic workload class of
"A Benes Packet Network" (Huang & Walrand — see PAPERS.md):

- :mod:`~repro.packet.partial` — the normalized
  :class:`PartialMapping` call model (``k`` of ``N`` inputs active),
  routed through **any** registered engine via canonical completion +
  masking (:func:`repro.accel.batch_route_partial`), byte-identical
  across engine generations for the active lanes;
- :mod:`~repro.packet.sim` — the time-stepped simulator: per-switch
  bounded queues over the Section-IV pipeline transit model, seeded
  contention arbitration, drop/retry with configurable backoff, and
  ``packet.*`` metrics through :mod:`repro.obs`.

Surfaces: the ``packet`` wire op of :mod:`repro.serve.protocol`, the
``partial`` family of ``benes verify``, the ``benes packet`` CLI, and
``benchmarks/bench_packet.py``'s saturation curves.

Submodules load lazily (mirroring :mod:`repro.accel`) so importing
``repro`` never pays for the simulator.
"""

from __future__ import annotations

__all__ = [
    "PacketSimConfig",
    "PacketSimReport",
    "PartialMapping",
    "route_partial",
    "saturation_sweep",
    "simulate",
]

_EXPORTS = {
    "PacketSimConfig": "sim",
    "PacketSimReport": "sim",
    "PartialMapping": "partial",
    "route_partial": "partial",
    "saturation_sweep": "sim",
    "simulate": "sim",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
