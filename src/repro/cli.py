"""Command-line interface: ``benes``.

Subcommands::

    benes info N                      structural summary of B(log N)
    benes check 3,1,2,0               class membership of a permutation
    benes plan 1,3,2,0                routing-strategy recommendation
    benes route 3,1,2,0 [--omega]     route with a stage-by-stage trace
    benes route --order 18            million-port mode: realize a
                [--engine composed]   seeded random permutation through
                [--check-blocks K]    the streaming composed engine,
                                      spot-checking K sub-blocks
                                      byte-for-byte against the scalar
                                      oracle
    benes fig4 / fig5 / fig6          reproduce the paper's figures
    benes table1 N                    Table I at a given size
    benes sample N [--count k]        random self-routable permutations
    benes census N                    classify all N! permutations
    benes report [--sections ...]     regenerate the evaluation report
    benes bench [--json PATH]         scalar vs batch-engine throughput
                [--suite setup]       ... of the universal setup instead
                [--suite scaling]     ... serial vs batch vs composed
                                      across orders (the BENCH_scaling
                                      producer lives in
                                      benchmarks/bench_scaling.py)
                [--parallel]          ... plus shard-executor cells
    benes metrics                     run a demo workload, dump metrics
    benes metrics dump                render OpenMetrics / JSON once
                [--format openmetrics|json] [--input PATH] [--demo]
    benes metrics serve --port P      serve GET /metrics for Prometheus
    benes verify [--seed S]           differential cross-engine fuzzing,
                [--budget 30s]        fault-injection parity, and the
                [--json PATH]         planted-mutant self-test
    benes packet --load 0.9           time-stepped packet simulation:
                [--loads 0.2,..]      bounded per-switch queues,
                [--policy random]     seeded contention arbitration,
                [--json PATH]         drop/retry (see repro.packet)
    benes serve --port P              routing-as-a-service daemon:
                [--max-batch B]       coalesce concurrent JSON-line
                [--max-wait-us U]     requests into (B, N) engine
                [--metrics-port M]    batches (see repro.serve)

Permutations are comma-separated destination-tag lists.

``benes route|bench|verify|serve`` share one option block —
``--engine/--parallel/--seed/--profile`` — defined once in
:func:`_shared_engine_parent`; its ``--engine`` choices come from the
:mod:`repro.engines` registry, and the resolution precedence is
documented there (and only there).

``benes route D --profile`` emits a JSON-lines event trace on stderr
while routing; ``benes bench --profile`` runs the sweep with metrics
collection on and embeds the snapshot in the report (see
:mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from . import obs as _obs
from .core import (
    BenesNetwork,
    Permutation,
    in_class_f,
    random_class_f,
    setup_states,
)
from .core.bits import log2_exact
from .errors import ReproError
from .permclasses import (
    bit_reversal,
    is_bpc,
    is_inverse_omega,
    is_omega,
    table_i_specs,
)
from .simd import CCC, permute_ccc
from .viz import render_ccc_trace, render_route, render_topology

__all__ = ["main"]


def _parse_permutation(text: str) -> Permutation:
    try:
        values = [int(tok) for tok in text.replace(" ", "").split(",")]
    except ValueError:
        raise SystemExit(f"cannot parse permutation {text!r}: use a "
                         "comma-separated destination list like 3,1,2,0")
    return Permutation(values)


def _cmd_info(args: argparse.Namespace) -> int:
    order = log2_exact(args.size)
    print(render_topology(order))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    perm = _parse_permutation(args.permutation)
    spec = is_bpc(perm)
    print(f"permutation D = {perm.as_tuple()}  (N = {perm.size})")
    print(f"  in F(n)            : {in_class_f(perm)}")
    print(f"  in BPC(n)          : "
          f"{spec is not None}{f'  [{spec}]' if spec else ''}")
    print(f"  in Omega(n)        : {is_omega(perm)}")
    print(f"  in InverseOmega(n) : {is_inverse_omega(perm)}")
    return 0


def _cmd_route_large(args: argparse.Namespace) -> int:
    """``benes route --order N``: realize one seeded random permutation
    of ``N = 2^order`` terminals through the streaming composed engine
    (:func:`repro.accel.iter_composed_states`) — the million-port mode.
    The full switch-state tensor is never held; finished columns and
    per-block chunks stream past, and up to ``--check-blocks`` sampled
    sub-blocks are re-derived with the scalar Waksman oracle on their
    local permutations and compared byte for byte."""
    import random
    import resource
    import time

    from .accel import (
        composed_plan,
        composed_stats,
        composed_stats_clear,
        iter_composed_states,
        numpy_or_none,
    )

    order = args.order
    if order < 2:
        raise SystemExit("--order must be >= 2 (use the positional "
                         "permutation form for tiny networks)")
    if args.omega:
        raise SystemExit("--omega applies to the trace form; the "
                         "--order mode realizes an arbitrary "
                         "permutation via the universal setup")
    seed = args.seed if args.seed is not None else 1980
    n = 1 << order
    np = numpy_or_none()
    if np is not None:
        perm = np.random.default_rng(seed).permutation(n)
    else:
        perm = list(range(n))
        random.Random(seed).shuffle(perm)
    # --engine composed is the default and the outer decomposition is
    # always this engine; any other explicit name steers the *inner*
    # per-block dispatch.
    inner = None if args.engine in (None, "auto", "composed") \
        else args.engine
    if args.profile:
        _obs.enable(trace=sys.stderr)
    plan = composed_plan(order)
    composed_stats_clear()
    rng = random.Random(seed + 1)
    columns = blocks = checked = bad = 0
    t0 = time.perf_counter()
    for chunk in iter_composed_states(order, perm, engine=inner):
        if chunk.kind == "column":
            columns += 1
            continue
        size = len(chunk.states)
        blocks += size
        if checked < args.check_blocks:
            i = rng.randrange(size)
            local = [int(v) for v in chunk.perms[i]]
            oracle = setup_states(local)
            got = [[int(v) for v in col] for col in chunk.states[i]]
            if got != [list(col) for col in oracle]:
                bad += 1
            checked += 1
    elapsed = time.perf_counter() - t0
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    stats = composed_stats()
    print(f"benes route --order {order}: N = {n} terminals, "
          f"{2 * order - 1} switch columns")
    print(f"  engine         : composed "
          f"(sub-order {plan.sub_order}, {plan.n_blocks} blocks of "
          f"{plan.block_size})")
    print(f"  streamed       : {columns} transit columns + "
          f"{blocks} sub-blocks in {stats['chunks']} chunks")
    print(f"  peak chunk     : {stats['peak_chunk_bytes']} bytes "
          f"(vs {(2 * order - 1) * (n // 2)} for the full tensor)")
    print(f"  elapsed        : {elapsed:.3f}s   peak RSS: {rss_kb} kB")
    print(f"  oracle parity  : {checked - bad}/{checked} sampled "
          f"blocks byte-identical to scalar Waksman "
          f"-> {'OK' if bad == 0 else 'MISMATCH'}")
    return 0 if bad == 0 else 1


def _cmd_route(args: argparse.Namespace) -> int:
    if args.order is not None:
        if args.permutation is not None:
            raise SystemExit("give either a permutation or --order N, "
                             "not both")
        return _cmd_route_large(args)
    if args.permutation is None:
        raise SystemExit("benes route needs a permutation like "
                         "3,1,2,0, or --order N for the streaming "
                         "million-port mode")
    if args.engine not in (None, "auto"):
        # Cross-check the name against the registry even though the
        # structural trace route is engine-independent — a typo should
        # fail identically across every subcommand.
        from .engines import require_exec

        require_exec(args.engine)
    perm = _parse_permutation(args.permutation)
    order = perm.order
    net = BenesNetwork(order)
    if args.profile:
        _obs.enable(trace=sys.stderr)
    result = net.route(perm, omega_mode=args.omega, trace=True)
    print(render_route(result, order))
    if not result.success and not args.omega:
        print("\nhint: the permutation is outside the self-routing "
              "class; external setup still realizes it:")
        realized = net.route_with_states(setup_states(perm)).realized
        print(f"  Waksman setup realizes: {realized.as_tuple()}")
    return 0 if result.success else 1


def _cmd_fig4(args: argparse.Namespace) -> int:
    net = BenesNetwork(3)
    perm = bit_reversal(3).to_permutation()
    print("Fig. 4 — bit reversal on the self-routing B(3):\n")
    print(render_route(net.route(perm, trace=True), 3))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    net = BenesNetwork(2)
    perm = Permutation((1, 3, 2, 0))
    print("Fig. 5 — D = (1,3,2,0) cannot be self-routed on B(2):\n")
    print(render_route(net.route(perm, trace=True), 2))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    machine = CCC(3)
    perm = bit_reversal(3).to_permutation()
    run = permute_ccc(machine, perm, trace=True)
    print("Fig. 6 — the CCC algorithm performing bit reversal "
          "(N = 8):\n")
    print(render_ccc_trace(run, 3))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    order = log2_exact(args.size)
    print(f"Table I — example permutations in BPC({order}):\n")
    for name, spec in table_i_specs(order):
        in_f = in_class_f(spec.to_permutation())
        print(f"  {name:<20} {str(spec):<28} in F: {in_f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import generate_report

    sections = args.sections.split(",") if args.sections else None
    print(generate_report(sections))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .planner import plan

    report = plan(_parse_permutation(args.permutation))
    print(f"permutation D = {report.permutation.as_tuple()}")
    print(f"  classes            : F={report.in_f} "
          f"BPC={report.bpc is not None} Omega={report.in_omega} "
          f"InvOmega={report.in_inverse_omega}")
    if report.bpc is not None:
        print(f"  A-vector           : {report.bpc}")
    print(f"  network strategy   : {report.network_strategy}"
          + (f" (alternatives: {', '.join(report.alternatives)})"
             if report.alternatives else ""))
    print(f"  SIMD strategy      : {report.simd_strategy}"
          + (f" (skip rule: {report.skip_rule})"
             if report.skip_rule else ""))
    print(f"  predicted CCC cost : {report.ccc_unit_routes} unit-routes")
    if report.failure_witness is not None:
        print(f"  Theorem 1 conflict : {report.failure_witness}")
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    import random

    order = log2_exact(args.size)
    rng = random.Random(args.seed)
    for _ in range(args.count):
        perm = random_class_f(order, rng)
        print(",".join(str(d) for d in perm))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from .analysis import class_census

    order = log2_exact(args.size)
    c = class_census(order)
    print(f"census of all {c.total} permutations at N = {args.size}:")
    print(f"  |F|            : {c.in_f}")
    print(f"  |BPC|          : {c.in_bpc}")
    print(f"  |Omega|        : {c.in_omega}")
    print(f"  |InverseOmega| : {c.in_inverse_omega}")
    print(f"  Omega \\ F      : {c.omega_not_f}")
    print(f"  BPC \\ F        : {c.bpc_not_f}   (Theorem 2)")
    print(f"  InvOmega \\ F   : {c.inverse_omega_not_f}   (Theorem 3)")
    return 0


def _parse_int_list(text: str, what: str) -> list:
    try:
        return [int(tok) for tok in text.replace(" ", "").split(",")]
    except ValueError:
        raise SystemExit(f"cannot parse {what} {text!r}: use a "
                         "comma-separated integer list like 4,6,8")


def _cmd_bench(args: argparse.Namespace) -> int:
    from .accel.benchmark import (
        format_scaling_table,
        format_setup_table,
        format_table,
        run_benchmark,
        run_scaling_benchmark,
        run_setup_benchmark,
        write_json,
    )

    if args.profile:
        _obs.enable()
    if args.suite == "scaling":
        orders = (_parse_int_list(args.orders, "--orders")
                  if args.orders != "4,6,8" else None)
        report = run_scaling_benchmark(
            orders=orders if orders is not None else (10, 12, 14),
            seed=args.seed,
            repeats=args.repeats,
        )
        print(format_scaling_table(report))
    elif args.suite == "setup":
        report = run_setup_benchmark(
            orders=_parse_int_list(args.orders, "--orders"),
            batch_sizes=_parse_int_list(args.batches, "--batches"),
            seed=args.seed,
            repeats=args.repeats,
            include_parallel=args.parallel,
            engine=args.engine or "auto",
        )
        print(format_setup_table(report))
    else:
        report = run_benchmark(
            orders=_parse_int_list(args.orders, "--orders"),
            batch_sizes=_parse_int_list(args.batches, "--batches"),
            seed=args.seed,
            repeats=args.repeats,
            include_parallel=args.parallel,
            engine=args.engine or "auto",
        )
        print(format_table(report))
    if args.json:
        write_json(report, args.json)
        print(f"\nwrote {args.json}")
    return 0


def _run_metrics_demo(count: int, seed: Optional[int]) -> None:
    """The small demo workload behind ``benes metrics``: enable
    collection and route/plan enough to populate every instrument
    family — a self-test of the observability layer."""
    import random

    from .accel import batch_self_route
    from .core.fastpath import fast_self_route
    from .planner import plan

    _obs.enable()
    # main() bumped this before collection was on; count ourselves in.
    _obs.inc("cli.command.metrics")
    rng = random.Random(seed)
    net = BenesNetwork(3)
    for _ in range(count):
        perm = random_class_f(3, rng)
        net.route(perm)
        fast_self_route(perm.as_tuple())
        plan(perm)
    BenesNetwork(2).route(Permutation((1, 3, 2, 0)))  # guaranteed failure
    batch_self_route([random_class_f(3, rng).as_tuple()
                      for _ in range(count)])


def _cmd_metrics(args: argparse.Namespace) -> int:
    _run_metrics_demo(args.count, args.seed)
    print(json.dumps(_obs.snapshot(), indent=2, sort_keys=True))
    return 0


def _load_snapshot(path: str) -> dict:
    """A metrics snapshot from ``path`` — either a raw ``benes
    metrics``-style snapshot or a bench report embedding one under its
    ``"metrics"`` key (``benes bench --profile --json``)."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: not a metrics snapshot")
    if "counters" not in data and isinstance(data.get("metrics"), dict):
        return data["metrics"]
    return data


def _cmd_metrics_dump(args: argparse.Namespace) -> int:
    """Render the registry (or a saved snapshot) once, in the format
    external tooling wants."""
    from .obs import export

    snapshot = _load_snapshot(args.input) if args.input else None
    if snapshot is None and args.demo:
        _run_metrics_demo(args.count, args.seed)
    if args.format == "json":
        print(export.render_json(snapshot))
    else:
        print(export.render_openmetrics(snapshot), end="")
    return 0


def _cmd_metrics_serve(args: argparse.Namespace) -> int:
    """Serve ``GET /metrics`` (OpenMetrics text) until interrupted."""
    from .obs import export

    if args.demo:
        _run_metrics_demo(args.count, args.seed)
    print(f"serving OpenMetrics on http://{args.host}:{args.port}"
          f"/metrics (ctrl-C to stop)", file=sys.stderr)
    export.serve(args.port, args.host)
    return 0


def _parse_budget(text: str) -> float:
    """Seconds from a human budget string: ``30``, ``30s``, ``500ms``,
    ``2m``."""
    token = text.strip().lower()
    try:
        if token.endswith("ms"):
            return float(token[:-2]) / 1000.0
        if token.endswith("s"):
            return float(token[:-1])
        if token.endswith("m"):
            return float(token[:-1]) * 60.0
        return float(token)
    except ValueError:
        raise SystemExit(f"cannot parse --budget {text!r}: use seconds "
                         "like 30, '30s', '500ms', or '2m'")


def _cmd_verify(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .engines import ALL_SELF_ROUTE_ENGINES, force_engine
    from .verify import VerifyConfig, run_verify

    if args.profile:
        _obs.enable()
        _obs.inc("cli.command.verify")
    engines = None
    if args.engines:
        engines = tuple(args.engines.replace(" ", "").split(","))
        # Validated against the FULL registry view: opt-in engines
        # (e.g. the live-daemon "serve" adapter) are reachable by
        # explicit name even though default sweeps exclude them.
        unknown = [e for e in engines
                   if e not in ALL_SELF_ROUTE_ENGINES]
        if unknown:
            raise SystemExit(
                f"unknown --engines {', '.join(unknown)}; known: "
                f"{', '.join(ALL_SELF_ROUTE_ENGINES)}"
            )
    families = tuple(args.families.replace(" ", "").split(","))
    known_families = VerifyConfig().families
    unknown = [f for f in families if f not in known_families]
    if unknown:
        raise SystemExit(
            f"unknown --families {', '.join(unknown)}; known: "
            f"{', '.join(known_families)}"
        )
    config = VerifyConfig(
        seed=args.seed,
        budget_seconds=_parse_budget(args.budget),
        orders=tuple(_parse_int_list(args.orders, "--orders")),
        batch=args.batch,
        families=families,
        fault_orders=tuple(
            _parse_int_list(args.fault_orders, "--fault-orders")),
        fault_perms=args.fault_perms,
        engines=engines,
        self_test=not args.no_self_test,
    )
    # The shared --engine flag steers the engine-resolution seam for
    # the whole campaign — the in-process form of BENES_ENGINE.
    steer = force_engine(args.engine) \
        if args.engine not in (None, "auto") else nullcontext()
    with steer:
        report = run_verify(config)

    d = report.to_dict()
    print(f"verify: seed={config.seed} budget={config.budget_seconds}s "
          f"elapsed={d['elapsed_seconds']}s rounds={report.rounds} "
          f"numpy={report.numpy}")
    print(f"  engines   : {', '.join(report.engines['selfroute'])}")
    print(f"  orders    : {','.join(str(o) for o in config.orders)}  "
          f"batch={config.batch}")
    for family in config.families:
        print(f"  {family:<10}: {report.cases.get(family, 0)} rounds")
    for campaign in report.fault_campaigns:
        print(f"  faults n={campaign['order']}: "
              f"{campaign['n_faults']} configs x "
              f"{campaign['n_perms']} perms -> "
              f"{'ok' if campaign['ok'] else 'FAIL'} "
              f"(dichotomy "
              f"{'holds' if campaign['dichotomy_holds'] else 'BROKEN'})")
    if report.self_test is not None:
        st = report.self_test
        print(f"  self-test : mutant at stage {st['mutate_stage']} "
              f"{'caught' if st['caught'] else 'MISSED'}"
              + (", shrunk to minimal counterexample"
                 if st.get("minimal") else ""))
    if report.disagreements:
        print(f"\n{len(report.disagreements)} DISAGREEMENT(S):")
        for entry in report.disagreements:
            print(f"  - {entry['family']}/{entry['field']}: "
                  f"{' vs '.join(entry['engines'])} at order "
                  f"{entry['order']} (row {entry['row']})")
            test_source = entry.get("regression_test")
            if test_source:
                print("    ready-to-paste regression test:")
                for line in test_source.splitlines():
                    print(f"      {line}")
    print(f"\nverdict: {'OK' if report.ok else 'FAIL'}")
    if args.json:
        payload = report.to_dict()
        if args.profile:
            payload["metrics"] = _obs.snapshot()
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_packet(args: argparse.Namespace) -> int:
    from .packet import PacketSimConfig, saturation_sweep, simulate

    if args.profile:
        _obs.enable()
        _obs.inc("cli.command.packet")
    if args.loads is not None:
        loads = []
        for token in args.loads.replace(" ", "").split(","):
            try:
                loads.append(float(token))
            except ValueError:
                raise SystemExit(
                    f"cannot parse --loads entry {token!r}")
    else:
        loads = [args.load]
    kwargs = dict(
        order=args.order,
        ticks=args.ticks,
        queue_capacity=args.queue_capacity,
        max_retries=args.max_retries,
        backoff_base=args.backoff_base,
        backoff_exp=args.backoff_exp,
        policy=args.policy,
        seed=args.seed if args.seed is not None else 1980,
    )
    try:
        reports = saturation_sweep(loads, **kwargs)
    except ReproError as exc:
        raise SystemExit(str(exc))
    n = 1 << args.order
    print(f"packet: N={n} (order {args.order})  ticks={args.ticks}  "
          f"queue={args.queue_capacity}  policy={args.policy}  "
          f"seed={kwargs['seed']}")
    print(f"  {'load':>6} {'thru':>8} {'drop%':>7} {'lat_mean':>9} "
          f"{'p50':>5} {'p99':>5} {'max':>5}")
    for report in reports:
        d = report.to_dict()
        mean = d["latency_mean"]
        print(f"  {d['offered_load']:>6.2f} {d['throughput']:>8.4f} "
              f"{100 * d['drop_rate']:>6.2f}% "
              f"{mean if mean is not None else '-':>9} "
              f"{d['latency_p50'] if d['latency_p50'] is not None else '-':>5} "
              f"{d['latency_p99'] if d['latency_p99'] is not None else '-':>5} "
              f"{d['latency_max'] if d['latency_max'] is not None else '-':>5}")
        if d["misrouted"]:
            print(f"    WARNING: {d['misrouted']} misrouted packets")
    if args.json:
        import os

        from .accel import have_numpy

        # same cells schema as benchmarks/bench_packet.py, so the
        # report feeds tools/bench_history.py and (if committed)
        # tools/check_bench_regression.py unchanged
        payload = {
            "benchmark": "packet",
            "numpy": have_numpy(),
            "cpu_count": os.cpu_count(),
            "order": args.order,
            "ticks": args.ticks,
            "queue_capacity": args.queue_capacity,
            "seed": kwargs["seed"],
            "cells": [
                dict(report.to_dict(), kind="packet", engine="sim",
                     speedup=None, batch_size=None, parallel=False)
                for report in reports
            ],
        }
        if args.profile:
            payload["metrics"] = _obs.snapshot()
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if all(r.misrouted == 0 for r in reports) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from .serve import ServeConfig
    from .serve import daemon as serve_daemon

    if args.profile or args.metrics_port is not None:
        _obs.enable()
        # main() bumped this before collection was on; count ourselves.
        _obs.inc("cli.command.serve")
    if args.metrics_port is not None:
        from .obs import export

        scrape = export.build_server(args.metrics_port, args.host)
        threading.Thread(target=scrape.serve_forever,
                         name="benes-metrics", daemon=True).start()
        print(f"benes serve: scrape endpoint on "
              f"http://{args.host}:{args.metrics_port}/metrics",
              file=sys.stderr)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        queue_limit=args.queue_limit,
        engine=None if args.engine in (None, "auto") else args.engine,
        parallel=args.parallel,
        warm_orders=tuple(_parse_int_list(args.warm_orders,
                                          "--warm-orders")),
    )
    if args.smoke_requests is not None:
        return _serve_smoke(config, args.smoke_requests,
                            seed=args.seed if args.seed is not None
                            else 1981)
    serve_daemon.serve(config)
    return 0


def _serve_smoke(config, count: int, *, seed: int) -> int:
    """Self-test mode for ``benes serve``: start the daemon, route
    ``count`` random permutations through a real socket client, check
    every response against the direct engine answer, and shut down.
    Gives CI a deterministic one-shot serving session (one trace tree,
    no backgrounded process to babysit)."""
    import random

    from .core.fastpath import fast_self_route
    from .errors import InvalidParameterError
    from .serve import ServeClient
    from .serve import daemon as serve_daemon

    if count < 1:
        raise InvalidParameterError("--smoke-requests must be >= 1")
    order = max(config.warm_orders) if config.warm_orders else 3
    size = 2 ** order
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        perm = list(range(size))
        rng.shuffle(perm)
        rows.append(perm)

    handle = serve_daemon.start_in_thread(config)
    try:
        host, port = handle.address
        with ServeClient(host, port) as client:
            responses = client.route_many(rows)
    finally:
        handle.stop()

    bad = 0
    for perm, response in zip(rows, responses):
        success, delivered = fast_self_route(perm)
        if (response.status != "ok"
                or bool(response.success) != success
                or (success
                    and tuple(response.mapping) != tuple(delivered))):
            bad += 1
    verdict = "OK" if bad == 0 else "MISMATCH"
    print(f"benes serve --smoke-requests: {count - bad}/{count} "
          f"responses matched the direct engine (order {order}) "
          f"-> {verdict}")
    return 0 if bad == 0 else 1


def _shared_engine_parent() -> argparse.ArgumentParser:
    """The option block ``route``/``bench``/``verify``/``serve``
    share: ``--engine/--parallel/--seed/--profile``, defined exactly
    once.  The ``--engine`` choices come from the
    :mod:`repro.engines` registry (registering an engine extends every
    subcommand at once); per-command seed defaults are installed with
    ``set_defaults`` on each subparser."""
    from .engines import exec_engine_names

    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group(
        "shared engine options (route/bench/verify/serve)")
    group.add_argument(
        "--engine", default=None,
        choices=tuple(exec_engine_names()) + ("auto",),
        help="execution engine for batched work; resolution "
             "precedence (enforced by the repro.engines registry): "
             "explicit --engine > the FORCE_ENGINE test hook > the "
             "BENES_ENGINE environment variable > 'auto' policy "
             "(NumPy when available, else the measured "
             "scalar/bitslice crossover)")
    group.add_argument(
        "--parallel", action="store_true",
        help="shard batches above the executor threshold across "
             "worker processes (commands without batched work accept "
             "and ignore this)")
    group.add_argument(
        "--seed", type=int, default=None,
        help="deterministic workload seed (each command supplies its "
             "own default)")
    group.add_argument(
        "--profile", action="store_true",
        help="collect obs metrics during the command (benes route: "
             "stream a JSON-lines event trace on stderr instead)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the `benes` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="benes",
        description="Self-routing Benes network toolkit "
                    "(Nassimi & Sahni, 1981)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    shared = _shared_engine_parent()

    p_info = sub.add_parser("info", help="structural summary of B(n)")
    p_info.add_argument("size", type=int, help="N (power of two)")
    p_info.set_defaults(func=_cmd_info)

    p_check = sub.add_parser("check", help="classify a permutation")
    p_check.add_argument("permutation", help="e.g. 3,1,2,0")
    p_check.set_defaults(func=_cmd_check)

    p_route = sub.add_parser("route", parents=[shared],
                             help="self-route a permutation with trace "
                                  "(or --order N for the streaming "
                                  "million-port mode)")
    p_route.add_argument("permutation", nargs="?", default=None,
                         help="e.g. 3,1,2,0 (omit when using --order)")
    p_route.add_argument("--omega", action="store_true",
                         help="force the first n-1 stages straight")
    p_route.add_argument("--order", type=int, default=None,
                         metavar="N",
                         help="million-port mode: realize a seeded "
                              "random permutation of 2^N terminals "
                              "through the streaming composed engine, "
                              "never holding the full state tensor")
    p_route.add_argument("--check-blocks", type=int, default=4,
                         metavar="K",
                         help="sampled sub-blocks checked byte-for-"
                              "byte against the scalar Waksman oracle "
                              "in --order mode (default 4)")
    p_route.set_defaults(func=_cmd_route)

    for fig, fn in (("fig4", _cmd_fig4), ("fig5", _cmd_fig5),
                    ("fig6", _cmd_fig6)):
        p = sub.add_parser(fig, help=f"reproduce the paper's {fig}")
        p.set_defaults(func=fn)

    p_t1 = sub.add_parser("table1", help="Table I at size N")
    p_t1.add_argument("size", type=int, help="N (power of two)")
    p_t1.set_defaults(func=_cmd_table1)

    p_plan = sub.add_parser(
        "plan", help="choose a routing strategy for a permutation"
    )
    p_plan.add_argument("permutation", help="e.g. 1,3,2,0")
    p_plan.set_defaults(func=_cmd_plan)

    p_sample = sub.add_parser(
        "sample", help="draw random self-routable permutations"
    )
    p_sample.add_argument("size", type=int, help="N (power of two)")
    p_sample.add_argument("--count", type=int, default=1)
    p_sample.add_argument("--seed", type=int, default=None)
    p_sample.set_defaults(func=_cmd_sample)

    p_census = sub.add_parser(
        "census", help="classify all N! permutations (N <= 8)"
    )
    p_census.add_argument("size", type=int, help="N (power of two, <= 8)")
    p_census.set_defaults(func=_cmd_census)

    p_bench = sub.add_parser(
        "bench", parents=[shared],
        help="benchmark the vectorized batch engine vs the scalar "
             "fast path",
    )
    p_bench.add_argument("--suite", choices=("route", "setup",
                                             "scaling"),
                         default="route",
                         help="'route' times batch self-routing; "
                              "'setup' times the batched universal "
                              "setup and two-pass factorization; "
                              "'scaling' times serial Waksman vs "
                              "batch vs composed across orders")
    p_bench.add_argument("--orders", default="4,6,8",
                         help="comma-separated network orders")
    p_bench.add_argument("--batches", default="64,256,1024",
                         help="comma-separated batch sizes")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timing repetitions (best is kept)")
    p_bench.add_argument("--json", default=None, metavar="PATH",
                         help="also write the machine-readable report "
                              "(e.g. BENCH_accel.json)")
    p_bench.set_defaults(func=_cmd_bench, engine="auto", seed=1980)

    p_metrics = sub.add_parser(
        "metrics",
        help="observability: demo snapshot (default), 'dump' renders "
             "OpenMetrics/JSON once, 'serve' exposes GET /metrics",
    )
    p_metrics.add_argument("--count", type=int, default=8,
                           help="routes per leg of the demo workload")
    p_metrics.add_argument("--seed", type=int, default=1980)
    p_metrics.set_defaults(func=_cmd_metrics)
    sub_metrics = p_metrics.add_subparsers(dest="metrics_command")

    p_dump = sub_metrics.add_parser(
        "dump",
        help="render the live registry (or a saved snapshot) once",
    )
    p_dump.add_argument("--format", choices=("openmetrics", "json"),
                        default="openmetrics")
    p_dump.add_argument("--input", default=None, metavar="PATH",
                        help="render a saved snapshot instead of the "
                             "live registry — a 'benes metrics' JSON "
                             "dump or a bench report with an embedded "
                             "'metrics' key")
    p_dump.add_argument("--demo", action="store_true",
                        help="run the demo workload first so the dump "
                             "has content")
    p_dump.set_defaults(func=_cmd_metrics_dump)

    p_serve = sub_metrics.add_parser(
        "serve",
        help="serve GET /metrics in the OpenMetrics text format",
    )
    p_serve.add_argument("--port", type=int, default=9464)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--demo", action="store_true",
                         help="run the demo workload first so scrapes "
                              "have content")
    p_serve.set_defaults(func=_cmd_metrics_serve)

    p_verify = sub.add_parser(
        "verify", parents=[shared],
        help="differential verification: fuzz every engine pair, "
             "run the exhaustive fault-parity campaign, and prove "
             "the pipeline catches a planted mutant",
    )
    p_verify.add_argument("--budget", default="30s",
                          help="time budget like '30s', '500ms', or "
                               "'2m'; the first full sweep always "
                               "completes, the budget bounds extra "
                               "rounds")
    p_verify.add_argument("--orders", default="2,3,4,5,6",
                          help="comma-separated network orders to fuzz")
    p_verify.add_argument("--batch", type=int, default=64,
                          help="workload rows per (order, family) case")
    p_verify.add_argument("--families",
                          default="selfroute,membership,universal,"
                                  "twopass,composed,partial",
                          help="comma-separated comparison families")
    p_verify.add_argument("--engines", default=None,
                          help="comma-separated self-route engine "
                               "subset (default: all; first entry is "
                               "the oracle)")
    p_verify.add_argument("--fault-orders", default="2,3,4,5",
                          help="orders for the exhaustive single-fault "
                               "campaign")
    p_verify.add_argument("--fault-perms", type=int, default=8,
                          help="F(n) members routed per fault config")
    p_verify.add_argument("--no-self-test", action="store_true",
                          help="skip the planted-mutant self-test")
    p_verify.add_argument("--json", default=None, metavar="PATH",
                          help="also write the machine-readable report "
                               "(e.g. VERIFY.json)")
    p_verify.set_defaults(func=_cmd_verify, seed=0)

    p_packet = sub.add_parser(
        "packet", parents=[shared],
        help="time-stepped packet simulation over the pipelined "
             "network: bounded queues, seeded contention, drop/retry "
             "(Huang & Walrand workload class)",
    )
    p_packet.add_argument("--order", type=int, default=4,
                          help="network order n (N = 2^n inputs)")
    p_packet.add_argument("--load", type=float, default=0.5,
                          help="per-input injection probability per "
                               "tick")
    p_packet.add_argument("--loads", default=None,
                          help="comma-separated offered loads for a "
                               "saturation sweep (overrides --load)")
    p_packet.add_argument("--ticks", type=int, default=512,
                          help="injection window length in ticks")
    p_packet.add_argument("--queue-capacity", type=int, default=4,
                          help="per-switch buffer bound in packets")
    p_packet.add_argument("--max-retries", type=int, default=16,
                          help="losses a packet survives before drop")
    p_packet.add_argument("--backoff-base", type=int, default=0,
                          help="ticks a contention loser waits before "
                               "re-arbitrating (0 = next tick)")
    p_packet.add_argument("--backoff-exp", action="store_true",
                          help="double the backoff per consecutive "
                               "loss")
    p_packet.add_argument("--policy", choices=("dest", "random"),
                          default="dest",
                          help="first-half steering: own destination "
                               "bits, or seeded random distribution "
                               "(Benes-packet load balancing)")
    p_packet.add_argument("--json", default=None, metavar="PATH",
                          help="also write the machine-readable "
                               "report (e.g. BENCH_packet.json shape)")
    p_packet.set_defaults(func=_cmd_packet)

    p_daemon = sub.add_parser(
        "serve", parents=[shared],
        help="long-lived routing daemon: newline-delimited JSON "
             "requests, micro-batched across connections into accel "
             "batches",
    )
    p_daemon.add_argument("--port", type=int, default=9463,
                          help="TCP port to listen on (0 = ephemeral)")
    p_daemon.add_argument("--host", default="127.0.0.1")
    p_daemon.add_argument("--max-batch", type=int, default=64,
                          help="coalescer size cutoff: flush a bucket "
                               "the moment it holds this many requests")
    p_daemon.add_argument("--max-wait-us", type=float, default=500.0,
                          help="coalescer latency cutoff in "
                               "microseconds: flush a bucket this long "
                               "after its first request arrived")
    p_daemon.add_argument("--queue-limit", type=int, default=4096,
                          help="backpressure bound: requests queued "
                               "beyond this are rejected with status "
                               "'rejected'")
    p_daemon.add_argument("--warm-orders", default="2,3,4,5,6",
                          help="comma-separated network orders whose "
                               "plan caches are warmed at startup")
    p_daemon.add_argument("--metrics-port", type=int, default=None,
                          metavar="PORT",
                          help="also expose GET /metrics (OpenMetrics) "
                               "on this port, with serve.* counters")
    p_daemon.add_argument("--smoke-requests", type=int, default=None,
                          metavar="N",
                          help="self-test mode: start the daemon, "
                               "route N random permutations through a "
                               "socket client, check each answer "
                               "against the direct engine, and exit "
                               "(for CI smoke — no backgrounding)")
    p_daemon.set_defaults(func=_cmd_serve)

    p_report = sub.add_parser(
        "report", help="regenerate the reproduction report"
    )
    p_report.add_argument(
        "--sections", default=None,
        help="comma-separated ids, e.g. FIG4,CLM-SIMD (default: all)"
    )
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the `benes` command-line tool."""
    args = build_parser().parse_args(argv)
    _obs.inc(f"cli.command.{args.command}")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
