"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InvalidPermutationError",
    "SizeMismatchError",
    "NotAPowerOfTwoError",
    "RoutingError",
    "SwitchStateError",
    "SpecificationError",
    "MachineError",
    "MaskError",
    "MissingDependencyError",
    "ProtocolError",
    "ServerBusyError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidParameterError(ReproError, ValueError):
    """A scalar argument is outside its domain (a network order below
    1, a negative bit index, a non-increasing histogram bound, an
    opt-in enumeration limit exceeded, ...)."""


class InvalidPermutationError(ReproError, ValueError):
    """A sequence claimed to be a permutation of ``0..N-1`` is not one."""


class SizeMismatchError(ReproError, ValueError):
    """Two objects that must share a size (e.g. a network and a
    permutation) have different sizes."""


class NotAPowerOfTwoError(ReproError, ValueError):
    """A size that must be an exact power of two is not."""


class RoutingError(ReproError, RuntimeError):
    """A network was asked to realize a permutation it cannot realize
    (e.g. a non-F permutation on the self-routing Benes network when the
    caller demanded success)."""


class SwitchStateError(ReproError, ValueError):
    """An externally supplied switch-state assignment is malformed."""


class SpecificationError(ReproError, ValueError):
    """A compact permutation descriptor (BPC A-vector, J-partition, ...)
    is malformed."""


class MachineError(ReproError, RuntimeError):
    """An SIMD machine was driven with an illegal instruction
    (e.g. a route along a connection the model does not provide)."""


class MaskError(ReproError, ValueError):
    """An enable mask does not match the machine's PE count."""


class MissingDependencyError(ReproError, ImportError):
    """An optional dependency (e.g. the ``accel`` extra's NumPy) is
    required for the requested feature but is not installed."""


class ProtocolError(ReproError, ValueError):
    """A ``benes serve`` wire message is malformed: not a JSON object,
    an unknown operation, a bad schema version, or a field outside its
    domain."""


class ServerBusyError(ReproError, RuntimeError):
    """The routing daemon shed load: its coalescing queue was full and
    the request was rejected rather than queued (the wire-level
    ``rejected`` status, surfaced by the in-process client)."""
