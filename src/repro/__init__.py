"""repro — A Self-Routing Benes Network and Parallel Permutation
Algorithms.

A complete reproduction of D. Nassimi & S. Sahni, IEEE Trans. Computers
C-30(5), 1981 (ISCA 1980): the self-routing Benes network, the class
``F(n)`` of permutations it realizes, the BPC / omega / inverse-omega /
FUB permutation classes, the Theorem 4-6 composition closures, and the
Section III SIMD permutation algorithms for cube-connected,
perfect-shuffle and mesh-connected computers — plus the baselines the
paper compares against (omega network, Batcher bitonic sorter, full
crossbar, Waksman external setup).

Quickstart::

    from repro import BenesNetwork, bit_reversal

    net = BenesNetwork(3)                       # B(3): 8 x 8
    perm = bit_reversal(3).to_permutation()     # a Table I permutation
    out = net.permute(perm, list("abcdefgh"))   # self-routed, O(log N)
"""

from .core import (
    BenesNetwork,
    BenesTopology,
    BinarySwitch,
    Permutation,
    PipelinedBenes,
    RouteResult,
    Signal,
    SwitchState,
    derive_upper_lower,
    enumerate_class_f,
    identity,
    in_class_f,
    in_class_f_simulated,
    random_class_f,
    random_permutation,
    setup_states,
)
from .errors import (
    InvalidPermutationError,
    MachineError,
    NotAPowerOfTwoError,
    ReproError,
    RoutingError,
    SizeMismatchError,
    SpecificationError,
    SwitchStateError,
)
from .networks import (
    BitonicNetwork,
    Crossbar,
    GeneralizedConnectionNetwork,
    InverseOmegaNetwork,
    OmegaNetwork,
    PermutationNetwork,
)
from .planner import RoutingPlan, plan
from .permclasses import (
    BPCSpec,
    JPartition,
    bit_reversal,
    bit_shuffle,
    blocks_and_within,
    conditional_exchange,
    cyclic_shift,
    hierarchical,
    is_bpc,
    is_inverse_omega,
    is_omega,
    matrix_transpose,
    p_ordering,
    p_ordering_with_shift,
    perfect_shuffle,
    segment_cyclic_shift,
    shuffled_row_major,
    table_i_specs,
    unshuffle,
    vector_reversal,
    within_blocks,
)
from .simd import (
    CCC,
    CIC,
    DualNetworkComputer,
    MCC,
    PSC,
    parallel_setup_states,
    permute_ccc,
    permute_mcc,
    permute_psc,
    sort_permute_ccc,
    sort_permute_psc,
)

__version__ = "1.0.0"

__all__ = [
    "BPCSpec",
    "BenesNetwork",
    "BenesTopology",
    "BinarySwitch",
    "BitonicNetwork",
    "CCC",
    "CIC",
    "Crossbar",
    "DualNetworkComputer",
    "GeneralizedConnectionNetwork",
    "InvalidPermutationError",
    "InverseOmegaNetwork",
    "JPartition",
    "MCC",
    "MachineError",
    "NotAPowerOfTwoError",
    "OmegaNetwork",
    "PSC",
    "Permutation",
    "PermutationNetwork",
    "PipelinedBenes",
    "ReproError",
    "RouteResult",
    "RoutingError",
    "RoutingPlan",
    "Signal",
    "SizeMismatchError",
    "SpecificationError",
    "SwitchState",
    "SwitchStateError",
    "bit_reversal",
    "bit_shuffle",
    "blocks_and_within",
    "conditional_exchange",
    "cyclic_shift",
    "derive_upper_lower",
    "enumerate_class_f",
    "hierarchical",
    "identity",
    "in_class_f",
    "in_class_f_simulated",
    "is_bpc",
    "is_inverse_omega",
    "is_omega",
    "matrix_transpose",
    "p_ordering",
    "parallel_setup_states",
    "plan",
    "p_ordering_with_shift",
    "perfect_shuffle",
    "permute_ccc",
    "random_class_f",
    "permute_mcc",
    "permute_psc",
    "random_permutation",
    "segment_cyclic_shift",
    "setup_states",
    "shuffled_row_major",
    "sort_permute_ccc",
    "sort_permute_psc",
    "table_i_specs",
    "unshuffle",
    "vector_reversal",
    "within_blocks",
]
