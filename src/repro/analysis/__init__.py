"""Quantitative analysis: Section I cost formulas and Section II class
cardinalities."""

from .cardinality import (
    ClassCensus,
    bpc_count,
    class_census,
    class_f_count,
    class_f_count_fast,
    estimate_class_f_density,
)
from .optimality import (
    ccc_active_dimensions,
    ccc_lower_bound,
    mcc_interchange_floor,
    mcc_lower_bound,
)
from .redundancy import setting_multiplicity, total_settings
from .report import REPORT_SECTIONS, generate_report
from .complexity import (
    SETUP_COMPLEXITY,
    NetworkCost,
    batcher_cost,
    benes_cost,
    comparison_table,
    crossbar_cost,
    lang_stone_cost,
    ns13_cost,
    omega_cost,
)

__all__ = [
    "ClassCensus",
    "NetworkCost",
    "REPORT_SECTIONS",
    "SETUP_COMPLEXITY",
    "batcher_cost",
    "benes_cost",
    "bpc_count",
    "ccc_active_dimensions",
    "ccc_lower_bound",
    "class_census",
    "class_f_count",
    "class_f_count_fast",
    "comparison_table",
    "generate_report",
    "crossbar_cost",
    "estimate_class_f_density",
    "lang_stone_cost",
    "mcc_interchange_floor",
    "mcc_lower_bound",
    "ns13_cost",
    "omega_cost",
    "setting_multiplicity",
    "total_settings",
]
