"""Closed-form cost formulas for the networks discussed in Section I.

The paper frames its contribution against the hardware cost (binary
switches) and transmission delay (switch stages) of the alternatives;
this module collects those formulas so benchmark CLM-NETS can print the
comparison table and the tests can check the structural models against
their own formulas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..errors import NotAPowerOfTwoError, SpecificationError
from ..core.bits import is_power_of_two, log2_exact

__all__ = [
    "NetworkCost",
    "benes_cost",
    "omega_cost",
    "crossbar_cost",
    "batcher_cost",
    "odd_even_cost",
    "lang_stone_cost",
    "ns13_cost",
    "comparison_table",
    "SETUP_COMPLEXITY",
]


@dataclass(frozen=True)
class NetworkCost:
    """Hardware/latency/capability summary of one network.

    Attributes:
        name: network name as used in the paper.
        switches: binary switch (comparator / crosspoint) count.
        delay: transmission delay in switch stages.
        realizable: number of distinct permutations realizable under
            the network's native (self-routing or trivial) control, or
            ``None`` when no closed form is available.
        setup: order-of-growth of the setup computation, as text.
    """

    name: str
    switches: int
    delay: int
    realizable: Optional[int]
    setup: str


def _check_size(n_terminals: int) -> int:
    if not is_power_of_two(n_terminals):
        raise NotAPowerOfTwoError(
            f"network size must be a power of two, got {n_terminals}"
        )
    return log2_exact(n_terminals)


def benes_cost(n_terminals: int, self_routing: bool = True) -> NetworkCost:
    """Benes ``B(n)``: ``N log N - N/2`` switches, ``2 log N - 1``
    stages.  Under the paper's self-routing control it realizes
    ``|F(n)|`` permutations in O(log N) total time; under external
    (Waksman) setup it realizes all ``N!`` at ``O(N log N)`` serial
    setup cost."""
    order = _check_size(n_terminals)
    if self_routing:
        return NetworkCost(
            name="Benes (self-routing)",
            switches=n_terminals * order - n_terminals // 2,
            delay=2 * order - 1,
            realizable=None,  # |F(n)| has no closed form; see cardinality
            setup="O(log N) (dynamic, in-flight)",
        )
    return NetworkCost(
        name="Benes (external setup)",
        switches=n_terminals * order - n_terminals // 2,
        delay=2 * order - 1,
        realizable=math.factorial(n_terminals),
        setup="O(N log N) serial (looping algorithm)",
    )


def omega_cost(n_terminals: int) -> NetworkCost:
    """Lawrie's omega network: ``(N/2) log N`` switches, ``log N``
    stages, ``2^{(N/2) log N}`` realizable permutations."""
    order = _check_size(n_terminals)
    return NetworkCost(
        name="Omega (self-routing)",
        switches=(n_terminals // 2) * order,
        delay=order,
        realizable=1 << ((n_terminals // 2) * order),
        setup="O(log N) (dynamic, in-flight)",
    )


def crossbar_cost(n_terminals: int) -> NetworkCost:
    """Full crossbar: ``N^2`` crosspoints, unit delay, all ``N!``
    permutations, trivial setup."""
    _check_size(n_terminals)
    return NetworkCost(
        name="Crossbar",
        switches=n_terminals * n_terminals,
        delay=1,
        realizable=math.factorial(n_terminals),
        setup="trivial",
    )


def batcher_cost(n_terminals: int) -> NetworkCost:
    """Batcher bitonic sorter: ``(N/2) * logN(logN+1)/2`` comparators,
    ``logN(logN+1)/2`` stages, all permutations, self-routing."""
    order = _check_size(n_terminals)
    stages = order * (order + 1) // 2
    return NetworkCost(
        name="Batcher bitonic",
        switches=(n_terminals // 2) * stages,
        delay=stages,
        realizable=math.factorial(n_terminals),
        setup="none (sorts on tags)",
    )


def odd_even_cost(n_terminals: int) -> NetworkCost:
    """Batcher odd-even merge sorter: same ``logN(logN+1)/2`` delay as
    the bitonic variant with strictly fewer comparators for N >= 8."""
    order = _check_size(n_terminals)
    from ..networks.oddeven import odd_even_comparator_count

    return NetworkCost(
        name="Batcher odd-even merge",
        switches=odd_even_comparator_count(order),
        delay=order * (order + 1) // 2,
        realizable=math.factorial(n_terminals),
        setup="none (sorts on tags)",
    )


def lang_stone_cost(n_terminals: int) -> NetworkCost:
    """Lang & Stone's shuffle-exchange proposal: a single shuffle stage
    reused ``O(sqrt N)`` times — ``N/2`` switches but ``O(sqrt N)``
    delay.  Delay is reported as the paper's bound ``2 sqrt(N)``."""
    _check_size(n_terminals)
    return NetworkCost(
        name="Lang-Stone shuffle",
        switches=n_terminals // 2,
        delay=2 * math.isqrt(n_terminals),
        realizable=None,
        setup="O(sqrt N) passes",
    )


def ns13_cost(n_terminals: int, fan_m: int) -> NetworkCost:
    """The parameterized family of Nassimi & Sahni [13]: for
    ``M in {2, 4, ..., N}``, ``O(N*M*(1 + logN - logM) * logN/logM)``
    switches and ``O(logN / logM)`` delay and setup."""
    order = _check_size(n_terminals)
    if not is_power_of_two(fan_m) or not 2 <= fan_m <= n_terminals:
        raise SpecificationError(
            f"M must be a power of two in [2, N], got {fan_m}"
        )
    log_m = log2_exact(fan_m)
    switches = (
        n_terminals * fan_m * (1 + order - log_m) * order // log_m
    )
    delay = max(1, order // log_m)
    return NetworkCost(
        name=f"NS[13] family (M={fan_m})",
        switches=switches,
        delay=delay,
        realizable=math.factorial(n_terminals),
        setup=f"O(logN/logM) = O({delay})",
    )


def comparison_table(n_terminals: int) -> List[NetworkCost]:
    """The Section I comparison at one size, Benes first."""
    return [
        benes_cost(n_terminals, self_routing=True),
        benes_cost(n_terminals, self_routing=False),
        omega_cost(n_terminals),
        crossbar_cost(n_terminals),
        batcher_cost(n_terminals),
        odd_even_cost(n_terminals),
        lang_stone_cost(n_terminals),
        ns13_cost(n_terminals, fan_m=min(4, n_terminals)),
    ]


#: Setup-time bounds quoted in Section I for the Benes network on the
#: four SIMD models of Nassimi & Sahni [7], versus this paper's scheme.
SETUP_COMPLEXITY = {
    "serial (Waksman looping)": "O(N log N)",
    "CIC, N PEs": "O(log N)",
    "MCC, sqrt(N) x sqrt(N)": "O(sqrt N)",
    "CCC/PSC, N PEs": "O(log^2 N)",
    "self-routing (this paper)": "O(log N) total, no preprocessing",
}
