"""Setting redundancy of the Benes network.

The network has ``2^{N logN - N/2}`` distinct switch settings but only
``N!`` permutations to realize, so settings are highly redundant — the
slack that makes the looping algorithm's free choices possible (and
gives the self-routing scheme room to pick a *canonical* setting for
class-F permutations).  This module measures the redundancy exactly for
small ``n`` by enumerating every setting:

- :func:`setting_multiplicity` — for each permutation, how many
  settings realize it;
- every permutation is realized at least once (rearrangeability,
  counted rather than assumed).

The enumeration routes settings in blocks through the vectorized
:func:`repro.accel.batch.batch_route_with_states` engine when NumPy is
available (the bit patterns of a whole block are synthesized with one
shift-and-mask broadcast), and falls back to the scalar fast path
otherwise — same counts either way, pinned by ``tests/test_fastpath.py``
and ``tests/test_accel.py``.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Tuple

from ..accel._np import numpy_or_none
from ..accel.batch import batch_route_with_states
from ..core.fastpath import fast_route_with_states
from ..core.topology import stage_count, switch_count
from ..errors import InvalidParameterError

__all__ = ["setting_multiplicity", "total_settings"]


def total_settings(order: int) -> int:
    """``2^{N logN - N/2}`` possible switch settings."""
    return 1 << switch_count(order)


def _multiplicity_scalar(order: int) -> Dict[Tuple[int, ...], int]:
    per_stage = (1 << order) // 2
    stages = stage_count(order)
    counts: Dict[Tuple[int, ...], int] = {}
    for flat in product((0, 1), repeat=per_stage * stages):
        states = [
            flat[s * per_stage:(s + 1) * per_stage]
            for s in range(stages)
        ]
        realized = fast_route_with_states(states, order)
        counts[realized] = counts.get(realized, 0) + 1
    return counts


def _multiplicity_vectorized(np, order: int, block_size: int,
                             parallel=False) -> Dict[Tuple[int, ...], int]:
    per_stage = (1 << order) // 2
    stages = stage_count(order)
    n_bits = per_stage * stages
    n_settings = 1 << n_bits
    # Bit b of the setting index is switch (b % per_stage) of stage
    # (b // per_stage); any fixed convention enumerates the same set.
    shifts = np.arange(n_bits, dtype=np.int64)
    counts: Dict[Tuple[int, ...], int] = {}
    for start in range(0, n_settings, block_size):
        stop = min(start + block_size, n_settings)
        indices = np.arange(start, stop, dtype=np.int64)
        bits = (indices[:, None] >> shifts) & 1
        states = bits.reshape(len(indices), stages, per_stage)
        realized = batch_route_with_states(states, order,
                                           parallel=parallel).mappings
        for row in realized:
            key = tuple(int(v) for v in row)
            counts[key] = counts.get(key, 0) + 1
    return counts


def setting_multiplicity(order: int, limit_order: int = 2,
                         block_size: int = 4096, parallel=False
                         ) -> Dict[Tuple[int, ...], int]:
    """Enumerate every switch setting of ``B(order)`` and count how
    many realize each permutation.

    Guarded to ``order <= limit_order``: B(2) has ``2^6 = 64``
    settings; B(3) already has ``2^20 ≈ 10^6`` (tractable with the
    vectorized engine, so opt in by raising the limit).  ``parallel``
    forwards each block to the shard executor.
    """
    if order > limit_order:
        raise InvalidParameterError(
            f"setting enumeration limited to order <= {limit_order}; "
            "raise limit_order explicitly to opt in"
        )
    np = numpy_or_none()
    if np is None:
        return _multiplicity_scalar(order)
    return _multiplicity_vectorized(np, order, block_size,
                                    parallel=parallel)
