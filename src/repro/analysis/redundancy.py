"""Setting redundancy of the Benes network.

The network has ``2^{N logN - N/2}`` distinct switch settings but only
``N!`` permutations to realize, so settings are highly redundant — the
slack that makes the looping algorithm's free choices possible (and
gives the self-routing scheme room to pick a *canonical* setting for
class-F permutations).  This module measures the redundancy exactly for
small ``n`` by enumerating every setting with the fast path:

- :func:`setting_multiplicity` — for each permutation, how many
  settings realize it;
- every permutation is realized at least once (rearrangeability,
  counted rather than assumed).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Tuple

from ..core.fastpath import fast_route_with_states
from ..core.topology import stage_count, switch_count

__all__ = ["setting_multiplicity", "total_settings"]


def total_settings(order: int) -> int:
    """``2^{N logN - N/2}`` possible switch settings."""
    return 1 << switch_count(order)


def setting_multiplicity(order: int, limit_order: int = 2
                         ) -> Dict[Tuple[int, ...], int]:
    """Enumerate every switch setting of ``B(order)`` and count how
    many realize each permutation.

    Guarded to ``order <= limit_order``: B(2) has ``2^6 = 64``
    settings; B(3) already has ``2^20 ≈ 10^6`` (tractable but slow, so
    opt in by raising the limit).
    """
    if order > limit_order:
        raise ValueError(
            f"setting enumeration limited to order <= {limit_order}; "
            "raise limit_order explicitly to opt in"
        )
    per_stage = (1 << order) // 2
    stages = stage_count(order)
    counts: Dict[Tuple[int, ...], int] = {}
    for flat in product((0, 1), repeat=per_stage * stages):
        states = [
            flat[s * per_stage:(s + 1) * per_stage]
            for s in range(stages)
        ]
        realized = fast_route_with_states(states, order)
        counts[realized] = counts.get(realized, 0) + 1
    return counts
