"""One-shot reproduction report: every figure, table and claim.

:func:`generate_report` regenerates the paper's artifacts as a single
text document — the same content the per-experiment benchmarks emit,
gathered for `benes report` and for EXPERIMENTS.md cross-checking.
Sections can be selected by id (``FIG1`` .. ``CLM-PIPE``).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from ..core import BenesNetwork, random_class_f
from ..core.sampling import class_f_count_recursive
from ..permclasses import BPCSpec, bit_reversal, table_i_specs
from ..simd import (
    CCC,
    MCC,
    PSC,
    parallel_setup_states,
    permute_ccc,
    permute_mcc,
    permute_psc,
    sort_permute_ccc,
)
from ..viz import render_ccc_trace, render_route, render_topology
from .cardinality import class_census
from .complexity import comparison_table

__all__ = ["generate_report", "REPORT_SECTIONS"]


def _fig1(rng: random.Random) -> str:
    lines = ["structure vs formulas (2logN-1 stages, NlogN-N/2 switches):"]
    for order in (1, 3, 6, 10):
        net = BenesNetwork(order)
        lines.append(
            f"  n={order:>2}: stages={net.n_stages:>3} "
            f"switches={net.n_switches:>6}"
        )
    lines.append("")
    lines.append(render_topology(3))
    return "\n".join(lines)


def _fig4(rng: random.Random) -> str:
    net = BenesNetwork(3)
    perm = bit_reversal(3).to_permutation()
    return render_route(net.route(perm, trace=True), 3)


def _fig5(rng: random.Random) -> str:
    net = BenesNetwork(2)
    return render_route(net.route([1, 3, 2, 0], trace=True), 2)


def _fig6(rng: random.Random) -> str:
    run = permute_ccc(CCC(3), bit_reversal(3).to_permutation(),
                      trace=True)
    return render_ccc_trace(run, 3)


def _table1(rng: random.Random) -> str:
    lines = [f"{'permutation':<20} {'A-vector (n=4)':<26}"]
    for name, spec in table_i_specs(4):
        lines.append(f"{name:<20} {str(spec):<26}")
    return "\n".join(lines)


def _clm_nets(rng: random.Random) -> str:
    lines = [f"{'network':<26} {'switches':>9} {'delay':>6}"]
    for cost in comparison_table(64):
        lines.append(f"{cost.name:<26} {cost.switches:>9} "
                     f"{cost.delay:>6}")
    return "\n".join(lines)


def _clm_rich(rng: random.Random) -> str:
    lines = []
    for order in (2, 3):
        c = class_census(order)
        lines.append(
            f"n={order}: N!={c.total} |F|={c.in_f} |BPC|={c.in_bpc} "
            f"|Omega|={c.in_omega} Omega\\F={c.omega_not_f} "
            f"BPC\\F={c.bpc_not_f} InvOmega\\F={c.inverse_omega_not_f}"
        )
    lines.append(
        "transfer-matrix recursion agrees: "
        + ", ".join(
            f"|F({o})|={class_f_count_recursive(o)}" for o in (1, 2, 3)
        )
    )
    lines.append("|F(4)| = 133488540928 (see EXPERIMENTS.md ABL-SAMPLE)")
    return "\n".join(lines)


def _clm_simd(rng: random.Random) -> str:
    lines = [f"{'n':>3} {'CCC (2n-1)':>11} {'PSC (4n-3)':>11} "
             f"{'MCC (7sqrtN-8)':>15} {'sort (CCC)':>11}"]
    for order in (4, 6, 8):
        perm = BPCSpec.random(order, rng).to_permutation()
        ccc = permute_ccc(CCC(order), perm).unit_routes
        psc = permute_psc(PSC(order), perm).unit_routes
        mcc = (permute_mcc(MCC(order // 2), perm).unit_routes
               if order % 2 == 0 else None)
        sort = sort_permute_ccc(CCC(order), perm).unit_routes
        lines.append(
            f"{order:>3} {ccc:>11} {psc:>11} "
            f"{mcc if mcc is not None else '-':>15} {sort:>11}"
        )
    return "\n".join(lines)


def _clm_setup(rng: random.Random) -> str:
    lines = [f"{'n':>3} {'parallel setup steps':>21} "
             f"{'self-routing steps':>19}"]
    for order in (4, 6, 8):
        perm = random_class_f(order, rng)
        run = parallel_setup_states(perm)
        lines.append(f"{order:>3} {run.total_steps:>21} {'0':>19}")
    return "\n".join(lines)


REPORT_SECTIONS: Dict[str, Callable[[random.Random], str]] = {
    "FIG1": _fig1,
    "FIG4": _fig4,
    "FIG5": _fig5,
    "FIG6": _fig6,
    "TAB1": _table1,
    "CLM-NETS": _clm_nets,
    "CLM-RICH": _clm_rich,
    "CLM-SIMD": _clm_simd,
    "CLM-SETUP": _clm_setup,
}


def generate_report(sections: Optional[Sequence[str]] = None,
                    seed: int = 1980) -> str:
    """Regenerate the selected report sections (default: all) as one
    text document."""
    rng = random.Random(seed)
    chosen = list(REPORT_SECTIONS) if sections is None else list(sections)
    parts: List[str] = []
    for name in chosen:
        if name not in REPORT_SECTIONS:
            raise KeyError(
                f"unknown section {name!r}; "
                f"available: {sorted(REPORT_SECTIONS)}"
            )
        body = REPORT_SECTIONS[name](rng)
        bar = "=" * max(len(name) + 4, 12)
        parts.append(f"{bar}\n  {name}\n{bar}\n{body}\n")
    return "\n".join(parts)
