"""Quantifying the "richness" of class F (Section II, CLM-RICH).

The paper argues qualitatively that ``F(n)`` is much larger than the
omega class and contains all of BPC, the inverse-omega class and
Lenfant's FUB families.  This module makes the claim quantitative:

- exact ``|F(n)|`` by exhaustive enumeration for ``n <= 3``;
- a sampling estimator of ``|F(n)| / N!`` for larger ``n``;
- closed forms ``|BPC(n)| = 2^n n!`` and
  ``|Omega(n)| = |InverseOmega(n)| = 2^{n N/2}``;
- exact intersection/containment counts for small ``n`` (e.g. how many
  omega permutations fall outside F — the Fig. 5 phenomenon).
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass
from itertools import permutations as _all_permutations
from typing import Dict

from ..accel._np import require_numpy
from ..accel.batch import batch_in_class_f
from ..core.membership import enumerate_class_f, in_class_f
from ..core.permutation import Permutation, random_permutation
from ..errors import InvalidParameterError
from ..permclasses.bpc import is_bpc
from ..permclasses.omega import is_inverse_omega, is_omega

__all__ = [
    "bpc_count",
    "class_f_count",
    "class_f_count_fast",
    "estimate_class_f_density",
    "class_census",
    "ClassCensus",
]


def bpc_count(order: int) -> int:
    """``|BPC(n)| = 2^n * n!``."""
    return (1 << order) * math.factorial(order)


def class_f_count(order: int, limit_order: int = 3) -> int:
    """Exact ``|F(order)|`` by exhaustive enumeration (guarded to
    ``order <= limit_order``; ``8! = 40320`` cases at order 3)."""
    if order > limit_order:
        raise InvalidParameterError(
            f"exhaustive count limited to order <= {limit_order}; "
            "use estimate_class_f_density for larger orders"
        )
    n_elements = 1 << order
    return sum(
        1 for p in _all_permutations(range(n_elements)) if in_class_f(p)
    )


def estimate_class_f_density(order: int, samples: int,
                             rng: "_random.Random | None" = None,
                             batch_size: int = 1024,
                             parallel=False) -> float:
    """Monte-Carlo estimate of ``|F(n)| / N!`` — the probability that a
    uniformly random permutation is self-routable.

    Candidates are drawn from ``rng`` one by one (so a given seed sees
    the exact same permutation stream as the historical scalar loop)
    but membership-tested in blocks of ``batch_size`` through the
    vectorized engine of :mod:`repro.accel` — the hot path of large
    density sweeps.  ``parallel`` forwards to the shard executor
    (:mod:`repro.accel.executor`), splitting blocks above its threshold
    across worker processes.  Falls back to the scalar Theorem 1
    recursion when NumPy is absent, with identical results.
    """
    rng = rng if rng is not None else _random.Random()
    n_elements = 1 << order
    hits = 0
    remaining = samples
    while remaining > 0:
        block = min(batch_size, remaining)
        candidates = [
            random_permutation(n_elements, rng).as_tuple()
            for _ in range(block)
        ]
        hits += sum(map(bool, batch_in_class_f(candidates,
                                               parallel=parallel)))
        remaining -= block
    return hits / samples


def _transfer_traces(max_len: int) -> Dict[int, int]:
    """``trace(M^d)`` for the transfer matrix ``M = [[2,1],[1,0]]``:
    the number of valid per-cycle parameter assignments along a
    sigma-cycle of length ``d`` (see :mod:`repro.core.sampling`).
    Satisfies ``t_d = 2 t_{d-1} + t_{d-2}``."""
    traces = {1: 2, 2: 6}
    for d in range(3, max_len + 1):
        traces[d] = 2 * traces[d - 1] + traces[d - 2]
    return traces


def class_f_count_fast(order: int) -> int:
    """Exact ``|F(order)|`` by the transfer-matrix recursion over all
    pairs of ``F(order-1)`` members, vectorized with numpy.

    ``|F(n)| = sum over (u, l) in F(n-1)^2 of prod over cycles c of
    u^{-1}∘l of trace(M^{|c|})`` — the same identity as
    :func:`repro.core.sampling.class_f_count_recursive`, but fast
    enough to compute the previously out-of-reach ``|F(4)|`` exactly
    (the exhaustive route would need to test 16! ≈ 2·10^13
    permutations).

    Practical up to ``order = 4`` (a few minutes); ``order = 5`` would
    need |F(4)|^2 ≈ 10^22 pairs.
    """
    if order < 1:
        raise InvalidParameterError(f"order must be >= 1, got {order}")
    if order == 1:
        return 2
    np = require_numpy("class_f_count_fast")

    members = np.array(
        [p.as_tuple() for p in enumerate_class_f(order - 1)],
        dtype=np.int64,
    )
    n_members, half = members.shape
    traces = _transfer_traces(half)
    positions = np.arange(half)
    total = 0
    for u in members:
        u_inv = np.empty(half, dtype=np.int64)
        u_inv[u] = positions
        sigma = u_inv[members]                      # (m, half)
        fixed = np.empty((half + 1, n_members), dtype=np.int64)
        current = sigma
        for k in range(1, half + 1):
            fixed[k] = (current == positions).sum(axis=1)
            if k < half:
                current = np.take_along_axis(sigma, current, axis=1)
        # invert f_k = sum_{d | k} d * c_d  to get cycle counts c_d
        cycle_counts = np.zeros((half + 1, n_members), dtype=np.int64)
        for d in range(1, half + 1):
            surplus = fixed[d].copy()
            for e in range(1, d):
                if d % e == 0:
                    surplus -= e * cycle_counts[e]
            cycle_counts[d] = surplus // d
        weights = np.ones(n_members, dtype=np.int64)
        for d in range(1, half + 1):
            weights *= np.power(traces[d], cycle_counts[d])
        total += int(weights.sum())
    return total


@dataclass(frozen=True)
class ClassCensus:
    """Exact joint classification of all N! permutations at one order.

    Every count is the number of permutations with the given property;
    ``omega_not_f`` witnesses the Fig. 5 phenomenon
    (``Omega(n) ⊄ F(n)``) and the zero ``inverse_omega_not_f`` and
    ``bpc_not_f`` witness Theorems 3 and 2.
    """

    order: int
    total: int
    in_f: int
    in_bpc: int
    in_omega: int
    in_inverse_omega: int
    bpc_not_f: int
    omega_not_f: int
    inverse_omega_not_f: int
    f_not_bpc_not_omega_not_inverse: int


def class_census(order: int, limit_order: int = 3) -> ClassCensus:
    """Exhaustively classify every permutation of ``2^order`` elements
    against F, BPC, Omega and InverseOmega (``order <= limit_order``)."""
    if order > limit_order:
        raise InvalidParameterError(
            f"census limited to order <= {limit_order}"
        )
    n_elements = 1 << order
    total = in_f = in_bpc = in_om = in_iom = 0
    bpc_not_f = omega_not_f = iom_not_f = only_f = 0
    for dest in _all_permutations(range(n_elements)):
        perm = Permutation(dest)
        total += 1
        f = in_class_f(perm)
        b = is_bpc(perm) is not None
        o = is_omega(perm)
        io = is_inverse_omega(perm)
        in_f += f
        in_bpc += b
        in_om += o
        in_iom += io
        bpc_not_f += b and not f
        omega_not_f += o and not f
        iom_not_f += io and not f
        only_f += f and not b and not o and not io
    return ClassCensus(
        order=order,
        total=total,
        in_f=in_f,
        in_bpc=in_bpc,
        in_omega=in_om,
        in_inverse_omega=in_iom,
        bpc_not_f=bpc_not_f,
        omega_not_f=omega_not_f,
        inverse_omega_not_f=iom_not_f,
        f_not_bpc_not_omega_not_inverse=only_f,
    )
