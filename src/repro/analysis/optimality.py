"""Optimality factors for BPC routing (Section III claims).

The paper states that for BPC permutations the Benes-simulation
algorithms are

- *"within a factor of two from the optimal"* on a CCC (the optimal
  algorithm being Nassimi & Sahni [12]), and
- *"optimal to within a factor of four"* on an MCC (optimal: [6]).

Both claims are reproduced here against constructive lower bounds:

- **CCC**: any algorithm must route across every *active* cube
  dimension — a dimension ``j`` where some record's source and
  destination addresses differ in bit ``j``; for a BPC spec those are
  exactly the dimensions with ``A_j != +j``.  The simulation uses at
  most ``2a - 1`` interchanges for ``a`` active dimensions (each active
  dimension at most twice), hence < 2x optimal.
- **MCC**: two comparators are provided.  :func:`mcc_lower_bound` is a
  true information-theoretic floor (the largest L1 source-to-
  destination distance — one record cannot beat one hop per
  unit-route), but it is weak for BPC permutations.  The paper's
  factor-four claim compares against the *optimal BPC algorithm* of
  Nassimi & Sahni [6], whose cost is captured by
  :func:`mcc_interchange_floor` — one distance-``2^k`` interchange per
  active dimension, ``2^{k+1}`` unit-routes each.  The Benes simulation
  visits every active dimension at most twice, so it is within a
  factor of **two** of that floor (comfortably inside the paper's
  factor of four).
"""

from __future__ import annotations

from typing import Sequence, Union

from ..core.permutation import Permutation
from ..errors import SizeMismatchError
from ..permclasses.bpc import BPCSpec

__all__ = [
    "ccc_active_dimensions",
    "ccc_lower_bound",
    "mcc_lower_bound",
    "mcc_interchange_floor",
]

PermutationLike = Union[Permutation, Sequence[int]]


def ccc_active_dimensions(spec: BPCSpec) -> int:
    """Number of cube dimensions a BPC permutation must route across:
    the dimensions **not** fixed by ``A_j = +j``.

    Bit ``j`` of some record's address changes iff the A-vector does
    not map source bit ``j`` to destination bit ``j`` uncomplemented.
    """
    return spec.order - len(spec.fixed_dimensions())


def ccc_lower_bound(spec: BPCSpec) -> int:
    """Unit-route lower bound on a CCC for a BPC permutation (single-
    transfer records): one interchange per active dimension."""
    return ccc_active_dimensions(spec)


def mcc_interchange_floor(spec: BPCSpec, side_order: int) -> int:
    """Unit-route cost of visiting every active dimension of a BPC
    permutation exactly once on a ``2^q x 2^q`` MCC — the per-dimension
    structure of the optimal algorithm of Nassimi & Sahni [6].

    Dimension ``b`` lies at mesh distance ``2^{b mod q}``, costing
    ``2^{(b mod q)+1}`` unit-routes per interchange.
    """
    if spec.order != 2 * side_order:
        raise SizeMismatchError(
            f"BPC spec of order {spec.order} on a mesh with "
            f"{2 * side_order} index bits"
        )
    fixed = set(spec.fixed_dimensions())
    return sum(
        1 << ((b % side_order) + 1)
        for b in range(spec.order) if b not in fixed
    )


def mcc_lower_bound(perm: PermutationLike, side_order: int) -> int:
    """Unit-route lower bound on a ``2^q x 2^q`` MCC: the largest L1
    distance any record must travel (a single record cannot move
    faster than one hop per unit-route)."""
    perm = perm if isinstance(perm, Permutation) else Permutation(perm)
    side = 1 << side_order
    worst = 0
    for source in range(perm.size):
        dest = perm[source]
        distance = (
            abs((source >> side_order) - (dest >> side_order))
            + abs((source & (side - 1)) - (dest & (side - 1)))
        )
        worst = max(worst, distance)
    return worst
