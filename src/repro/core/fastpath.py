"""Integer-only fast path for bulk routing experiments.

The structural :class:`~repro.core.benes.BenesNetwork` models every
switch as an object and every signal as a dataclass — ideal for traces
and faithfulness, costly for bulk statistics (cardinality sweeps,
Monte-Carlo density estimates, settings-multiplicity counts).  This
module provides allocation-light equivalents operating on plain integer
lists:

- :func:`fast_self_route` — self-routing success + realized mapping;
- :func:`fast_route_with_states` — realized mapping under external
  states.

Both are verified against the structural network in
``tests/test_fastpath.py`` (exhaustively for small n, randomized for
large) and are drop-in building blocks for the analysis layer.

For *batches* of tag vectors, prefer :mod:`repro.accel` — the
NumPy-vectorized engine built on the same cached topologies.  Per-order
topologies live in the lock-guarded bounded LRU of
:mod:`repro.accel.plans` (shared with the batch engine's stage-plan
cache), which replaced the unbounded module-level ``_TOPO_CACHE`` dict.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..accel.plans import cached_topology as _topology
from .bits import log2_exact
from .switch import validate_stuck_switches

__all__ = [
    "fast_self_route",
    "fast_self_route_states",
    "fast_route_with_states",
]


def _stuck_by_stage(stuck_switches, n_stages: int, half: int
                    ) -> Optional[Dict[int, Dict[int, int]]]:
    """Validate a fault map and regroup it per stage for the loop."""
    if not stuck_switches:
        return None
    validate_stuck_switches(stuck_switches, n_stages, half)
    by_stage: Dict[int, Dict[int, int]] = {}
    for (stage, index), state in stuck_switches.items():
        by_stage.setdefault(stage, {})[index] = 1 if state else 0
    return by_stage


def _self_route_pass(tags: Sequence[int], omega_mode: bool,
                     stuck_switches, want_states: bool):
    """Shared routing loop: returns ``(success, delivered, states)``
    with ``states`` ``None`` unless requested."""
    n = len(tags)
    order = log2_exact(n)
    topology = _topology(order)
    by_stage = _stuck_by_stage(stuck_switches, topology.n_stages, n // 2)
    rows_tag: List[int] = list(tags)
    rows_src: List[int] = list(range(n))
    states: Optional[List[Tuple[int, ...]]] = [] if want_states else None
    last_stage = topology.n_stages - 1
    omega_stages = order - 1 if omega_mode else 0
    for stage in range(topology.n_stages):
        ctrl = min(stage, 2 * order - 2 - stage)
        stuck = by_stage.get(stage) if by_stage else None
        forced = stage < omega_stages
        if stuck is None and states is None:
            if not forced:  # omega bit forces early columns straight
                for i in range(0, n, 2):
                    if (rows_tag[i] >> ctrl) & 1:
                        rows_tag[i], rows_tag[i + 1] = (
                            rows_tag[i + 1], rows_tag[i]
                        )
                        rows_src[i], rows_src[i + 1] = (
                            rows_src[i + 1], rows_src[i]
                        )
        else:
            # General column: stuck control overrides both the tag rule
            # and the omega forcing, exactly as in the structural
            # network's switch logic.
            column: List[int] = []
            for i in range(n // 2):
                if stuck is not None and i in stuck:
                    s = stuck[i]
                elif forced:
                    s = 0
                else:
                    s = (rows_tag[2 * i] >> ctrl) & 1
                if s:
                    rows_tag[2 * i], rows_tag[2 * i + 1] = (
                        rows_tag[2 * i + 1], rows_tag[2 * i]
                    )
                    rows_src[2 * i], rows_src[2 * i + 1] = (
                        rows_src[2 * i + 1], rows_src[2 * i]
                    )
                if states is not None:
                    column.append(s)
            if states is not None:
                states.append(tuple(column))
        if stage < last_stage:
            link = topology.links[stage]
            new_tag = [0] * n
            new_src = [0] * n
            for r in range(n):
                target = link[r]
                new_tag[target] = rows_tag[r]
                new_src[target] = rows_src[r]
            rows_tag = new_tag
            rows_src = new_src
    success = all(rows_tag[r] == r for r in range(n))
    return (success, tuple(rows_src),
            tuple(states) if states is not None else None)


def fast_self_route(tags: Sequence[int], *, omega_mode: bool = False,
                    stuck_switches: Optional[dict] = None
                    ) -> Tuple[bool, Tuple[int, ...]]:
    """Self-route a tag vector; return ``(success, delivered)`` where
    ``delivered[o]`` is the input whose signal arrived at output ``o``.

    Semantically identical to
    ``BenesNetwork(order).route(tags)`` -> ``(success, delivered)``,
    roughly an order of magnitude lighter.  ``omega_mode`` sets the
    omega bit on every signal (first ``n - 1`` columns forced
    straight), mirroring ``BenesNetwork.route(omega_mode=True)``.
    ``stuck_switches`` injects faults exactly as the structural
    network's ``route(stuck_switches=...)``: a ``{(stage, switch):
    state}`` map of switches whose control logic is stuck.
    """
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    success, delivered, _ = _self_route_pass(
        tags, omega_mode, stuck_switches, want_states=False
    )
    if enabled:
        _obs.inc("fastpath.self_route.calls")
        _obs.inc("fastpath.self_route.success" if success
                 else "fastpath.self_route.failure")
        _obs.observe("fastpath.self_route.seconds",
                     _perf_counter() - t0)
    return success, delivered


def fast_self_route_states(tags: Sequence[int], *,
                           omega_mode: bool = False,
                           stuck_switches: Optional[dict] = None
                           ) -> Tuple[bool, Tuple[int, ...],
                                      Tuple[Tuple[int, ...], ...]]:
    """:func:`fast_self_route` plus the per-column switch states:
    returns ``(success, delivered, states)`` with ``states[s][i]`` the
    0/1 state switch ``i`` of column ``s`` took — value-identical to
    the :class:`~repro.core.routing.StageTrace` states of
    ``BenesNetwork.route(..., trace=True)``.  This is the state oracle
    the differential verifier (:mod:`repro.verify`) compares every
    engine against."""
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    success, delivered, states = _self_route_pass(
        tags, omega_mode, stuck_switches, want_states=True
    )
    if enabled:
        _obs.inc("fastpath.self_route.calls")
        _obs.inc("fastpath.self_route.success" if success
                 else "fastpath.self_route.failure")
        _obs.observe("fastpath.self_route.seconds",
                     _perf_counter() - t0)
    return success, delivered, states


def fast_route_with_states(states: Sequence[Sequence[int]],
                           order: int) -> Tuple[int, ...]:
    """Realized permutation (input -> output) of ``B(order)`` under an
    external state assignment; integer-only equivalent of
    ``BenesNetwork.route_with_states(states).realized``."""
    enabled = _obs.enabled()
    t0 = _perf_counter() if enabled else 0.0
    topology = _topology(order)
    n = 1 << order
    rows: List[int] = list(range(n))
    last_stage = topology.n_stages - 1
    for stage in range(topology.n_stages):
        column = states[stage]
        for i in range(n // 2):
            if column[i]:
                rows[2 * i], rows[2 * i + 1] = (
                    rows[2 * i + 1], rows[2 * i]
                )
        if stage < last_stage:
            link = topology.links[stage]
            new_rows = [0] * n
            for r in range(n):
                new_rows[link[r]] = rows[r]
            rows = new_rows
    dest = [0] * n
    for output, source in enumerate(rows):
        dest[source] = output
    if enabled:
        _obs.inc("fastpath.route_with_states.calls")
        _obs.observe("fastpath.route_with_states.seconds",
                     _perf_counter() - t0)
    return tuple(dest)
