"""Sampling and counting the class ``F(n)`` via its recursive structure.

Theorem 1 says ``D in F(n)`` iff the derived sub-permutations ``U`` and
``L`` have high-bit parts in ``F(n-1)``.  Running the decomposition
*backwards* gives a constructive parameterization of ``F(n)``:

- choose ``u, l in F(n-1)`` (the sub-network destinations);
- choose, for every first-column switch ``i``, the low bit ``beta_i`` of
  the tag sent to the upper sub-network; the low bit of the tag sent
  down is then forced: ``gamma_i = 1 - beta_{sigma(i)}`` where
  ``sigma = u^{-1} ∘ l`` (the last-column pairing constraint);
- choose the input arrangement of each switch, which the self-routing
  rule constrains: ``(beta_i, gamma_i) = (0,1)`` leaves two valid
  arrangements, ``(0,0)`` and ``(1,1)`` one each, and ``(1,0)`` none.

Counting the choices along each cycle of ``sigma`` is a transfer-matrix
product with ``M = [[2, 1], [1, 0]]`` (indexed by
``(beta_i, beta_{sigma(i)})``), giving

    #{D : U_hi = u, L_hi = l}  =  prod over cycles c of sigma
                                      trace(M^{|c|})

and hence ``|F(n)| = sum over (u, l) in F(n-1)^2`` of that product —
validated against the exhaustive counts (20 at n=2, 11632 at n=3).

:func:`random_class_f` uses the same parameterization to draw members
of ``F(n)`` at any size (every member is reachable; the distribution is
exactly uniform *given* ``(u, l)`` but not across them, since pair
weights differ — see the docstring).
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Sequence, Tuple

from ..errors import InvalidParameterError
from .membership import enumerate_class_f
from .permutation import Permutation

__all__ = [
    "TRANSFER_MATRIX",
    "pair_weight",
    "class_f_count_recursive",
    "random_class_f",
    "random_class_f_uniform",
]

#: ``TRANSFER_MATRIX[beta_i][beta_sigma(i)]`` = number of (gamma,
#: arrangement) completions at switch ``i``.
TRANSFER_MATRIX = ((2, 1), (1, 0))


def _mat_mul(a, b):
    return (
        (a[0][0] * b[0][0] + a[0][1] * b[1][0],
         a[0][0] * b[0][1] + a[0][1] * b[1][1]),
        (a[1][0] * b[0][0] + a[1][1] * b[1][0],
         a[1][0] * b[0][1] + a[1][1] * b[1][1]),
    )


def _mat_pow(m, k):
    result = ((1, 0), (0, 1))
    base = m
    while k:
        if k & 1:
            result = _mat_mul(result, base)
        base = _mat_mul(base, base)
        k >>= 1
    return result


def _cycles_of(sigma: Sequence[int]) -> List[List[int]]:
    seen = [False] * len(sigma)
    cycles = []
    for start in range(len(sigma)):
        if seen[start]:
            continue
        cycle = [start]
        seen[start] = True
        nxt = sigma[start]
        while nxt != start:
            cycle.append(nxt)
            seen[nxt] = True
            nxt = sigma[nxt]
        cycles.append(cycle)
    return cycles


def _sigma_of(u: Permutation, l: Permutation) -> List[int]:
    """``sigma(i) = u^{-1}(l(i))``: the first-column switch whose beta
    bit constrains switch ``i``'s gamma bit."""
    u_inv = u.inverse()
    return [u_inv[l[i]] for i in range(len(l))]


def pair_weight(u: Permutation, l: Permutation) -> int:
    """Number of distinct ``F(n)`` members whose Theorem 1
    decomposition has upper part ``u`` and lower part ``l``
    (both in ``F(n-1)``)."""
    weight = 1
    for cycle in _cycles_of(_sigma_of(u, l)):
        power = _mat_pow(TRANSFER_MATRIX, len(cycle))
        weight *= power[0][0] + power[1][1]
    return weight


def class_f_count_recursive(order: int, limit_order: int = 3) -> int:
    """``|F(order)|`` computed from the transfer-matrix recursion over
    all pairs of ``F(order-1)`` members.

    Exact and independent of the exhaustive enumeration; guarded to
    ``order <= limit_order`` because it enumerates ``F(order-1)``
    explicitly (at order 4 that is 11632^2 pairs).
    """
    if order < 1:
        raise InvalidParameterError(f"order must be >= 1, got {order}")
    if order == 1:
        return 2
    if order > limit_order:
        raise InvalidParameterError(
            f"recursive count limited to order <= {limit_order}"
        )
    members = list(enumerate_class_f(order - 1))
    return sum(
        pair_weight(u, l) for u in members for l in members
    )


def _sample_cycle_betas(length: int, rng: "_random.Random"
                        ) -> List[int]:
    """Draw a beta assignment along one sigma-cycle with probability
    proportional to its transfer-matrix weight (exact, via suffix
    matrix powers)."""
    powers = [_mat_pow(TRANSFER_MATRIX, k) for k in range(length + 1)]
    # first element: weight of closing the cycle from state b
    w0 = powers[length][0][0]
    w1 = powers[length][1][1]
    first = 0 if rng.randrange(w0 + w1) < w0 else 1
    betas = [first]
    for position in range(1, length):
        prev = betas[-1]
        remaining = length - position
        weights = [
            TRANSFER_MATRIX[prev][c] * powers[remaining][c][first]
            for c in (0, 1)
        ]
        total = weights[0] + weights[1]
        betas.append(0 if rng.randrange(total) < weights[0] else 1)
    return betas


def random_class_f(order: int,
                   rng: "_random.Random | None" = None) -> Permutation:
    """Draw a member of ``F(order)`` constructively, at any size.

    Every member of ``F(order)`` has positive probability (the
    parameterization is onto), and conditioned on the sub-permutation
    pair ``(u, l)`` the draw is exactly uniform; across pairs the
    distribution is mildly non-uniform because pair weights differ.
    Use :func:`random_class_f_uniform` (rejection) when exact
    uniformity matters and the order is small.
    """
    rng = rng if rng is not None else _random
    if order < 1:
        raise InvalidParameterError(f"order must be >= 1, got {order}")
    if order == 1:
        return Permutation((0, 1) if rng.getrandbits(1) else (1, 0))

    upper = random_class_f(order - 1, rng)
    lower = random_class_f(order - 1, rng)
    half = 1 << (order - 1)
    sigma = _sigma_of(upper, lower)

    betas = [0] * half
    for cycle in _cycles_of(sigma):
        for element, beta in zip(cycle, _sample_cycle_betas(len(cycle),
                                                            rng)):
            betas[element] = beta

    dest = [0] * (1 << order)
    for i in range(half):
        tag_up = (upper[i] << 1) | betas[i]
        gamma = 1 - betas[sigma[i]]
        tag_down = (lower[i] << 1) | gamma
        if betas[i] == 0 and gamma == 1:
            # both input arrangements are self-routable: pick one
            if rng.getrandbits(1):
                dest[2 * i], dest[2 * i + 1] = tag_up, tag_down
            else:
                dest[2 * i], dest[2 * i + 1] = tag_down, tag_up
        elif betas[i] == 0:  # gamma == 0: upper input must carry tag_up
            dest[2 * i], dest[2 * i + 1] = tag_up, tag_down
        else:                # beta == 1, gamma == 1: tag_down on top
            dest[2 * i], dest[2 * i + 1] = tag_down, tag_up
    return Permutation(dest)


def random_class_f_uniform(order: int,
                           rng: "_random.Random | None" = None,
                           max_tries: int = 100000,
                           batch_size: int = 256) -> Permutation:
    """Uniform member of ``F(order)`` by rejection from uniform random
    permutations.  Practical for ``order <= 4`` (F-density ~0.013 at
    order 4); raises after ``max_tries`` rejections.

    Candidates are drawn from ``rng`` and membership-tested in blocks
    of up to ``batch_size`` through the vectorized
    :func:`repro.accel.batch.batch_in_class_f` engine (scalar Theorem 1
    fallback without NumPy); the first member in draw order is
    returned, so the output distribution is exactly that of one-by-one
    rejection.  Note the block draw may consume more ``rng`` states
    than a scalar loop would have.
    """
    # Local import: repro.accel.batch itself builds on repro.core.
    from ..accel.batch import batch_in_class_f
    from .permutation import random_permutation

    rng = rng if rng is not None else _random
    n_elements = 1 << order
    tried = 0
    while tried < max_tries:
        block = min(batch_size, max_tries - tried)
        candidates = [
            random_permutation(n_elements, rng) for _ in range(block)
        ]
        mask = batch_in_class_f([c.as_tuple() for c in candidates])
        for candidate, hit in zip(candidates, mask):
            if hit:
                return candidate
        tried += block
    raise RuntimeError(
        f"no F({order}) member found in {max_tries} tries; "
        "use random_class_f for large orders"
    )
