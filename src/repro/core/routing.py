"""Routing results and per-stage traces.

Routing a vector of signals through a network produces a
:class:`RouteResult`: whether every signal reached the output terminal
named by its destination tag, the realized input->output mapping, and —
when tracing is enabled — a :class:`StageTrace` per switch column with
the tags present on every row and the state every switch took.  The
traces are what the figure-reproduction benchmarks (Figs. 4 and 5)
render.

Routing a *batch* of vectors (:mod:`repro.accel`) produces the batched
mirror, :class:`BatchRouteResult`: a success mask and the delivered
mappings for every instance at once, with optional per-stage
switch-flip data.  The two classes form the unified routing result API
— one scalar shape, one batched shape, every entry point returning one
of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from .permutation import Permutation
from .switch import SwitchState

__all__ = ["StageTrace", "RouteResult", "BatchRouteResult"]


@dataclass(frozen=True)
class StageTrace:
    """Snapshot of one switch column during a routing pass.

    Attributes:
        stage: column index, 0-based from the input side.
        control_bit: the destination-tag bit that governed this column
            (``min(stage, 2n-2-stage)``), or ``None`` for externally
            set switches.
        input_tags: destination tag on each input row of the column.
        states: the state each switch took, top to bottom.
        output_tags: destination tag on each output row, *after* the
            switches but *before* the link to the next column.
    """

    stage: int
    control_bit: Optional[int]
    input_tags: Tuple[int, ...]
    states: Tuple[SwitchState, ...]
    output_tags: Tuple[int, ...]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one vector through a permutation network.

    Attributes:
        requested: the destination tags presented at the inputs
            (``requested[i]`` = tag of input ``i``).
        delivered: ``delivered[o]`` is the *input terminal* whose signal
            arrived at output ``o``.
        payloads: the payload that arrived at each output terminal.
        success: True iff every signal arrived at the output its tag
            names, i.e. ``delivered[requested[i]] == i`` for all ``i``.
        misrouted: output terminals that received a signal whose tag
            does not match them (empty on success).
        stages: per-column traces (empty unless tracing was requested).
    """

    requested: Tuple[int, ...]
    delivered: Tuple[int, ...]
    payloads: Tuple[object, ...]
    success: bool
    misrouted: Tuple[int, ...] = ()
    stages: Tuple[StageTrace, ...] = ()

    @property
    def realized(self) -> Permutation:
        """The input->output mapping the network actually performed
        (always a permutation: switches never drop or duplicate)."""
        n_terminals = len(self.delivered)
        dest = [0] * n_terminals
        for output, source in enumerate(self.delivered):
            dest[source] = output
        return Permutation(dest)

    def arrived_tags(self) -> Tuple[int, ...]:
        """The tag that arrived at each output terminal."""
        return tuple(self.requested[src] for src in self.delivered)


@dataclass(frozen=True, eq=False)
class BatchRouteResult:
    """Outcome of routing a batch of ``B`` vectors — the ``(B, N)``
    mirror of :class:`RouteResult`, returned by
    :func:`repro.accel.batch_self_route` and
    :func:`repro.accel.batch_route_with_states`.

    Attributes:
        success_mask: per-instance success — a ``(B,)`` bool array on
            the NumPy path, a list of bools on the fallback path.
        mappings: ``mappings[b][o]`` is the *input terminal* whose
            signal arrived at output ``o`` of instance ``b`` (the
            batched ``RouteResult.delivered``) — a ``(B, N)`` int array
            or a list of tuples.
        per_stage: optional per-stage switch-flip data: row ``s`` holds
            the number of crossed switches in column ``s`` for every
            instance (``(2n-1, B)``).  Populated by the NumPy engine
            when routing with ``stage_data=True``; ``None`` otherwise.
        stage_states: optional full switch-state record:
            ``stage_states[b][s][i]`` is the 0/1 state switch ``i`` of
            column ``s`` took for instance ``b`` (``(B, 2n-1, N/2)``
            int8 array, or a list of per-instance nested tuples on the
            fallback path).  Populated when routing with
            ``stage_states=True`` — the byte-level evidence the
            differential verifier compares against the scalar oracle.

    The pre-1.1 tuple API (``success, delivered = ...``) completed its
    deprecation cycle and was removed; use the named fields.
    """

    success_mask: Any
    mappings: Any
    per_stage: Optional[Any] = None
    stage_states: Optional[Any] = None

    @property
    def batch_size(self) -> int:
        """Number of routed instances ``B``."""
        return len(self.success_mask)

    @property
    def n_success(self) -> int:
        """How many instances delivered every signal."""
        return sum(1 for ok in self.success_mask if ok)

    @property
    def all_success(self) -> bool:
        """True iff every instance succeeded."""
        return self.n_success == self.batch_size

def collect_result(requested: Sequence[int],
                   final_rows: Sequence,
                   stages: Sequence[StageTrace] = ()) -> RouteResult:
    """Assemble a :class:`RouteResult` from the signals present on the
    output rows after the last column.

    ``final_rows`` holds :class:`~repro.core.switch.Signal` objects in
    output-row order.
    """
    delivered = tuple(sig.source for sig in final_rows)
    payloads = tuple(sig.payload for sig in final_rows)
    misrouted = tuple(
        o for o, sig in enumerate(final_rows) if sig.tag != o
    )
    return RouteResult(
        requested=tuple(requested),
        delivered=delivered,
        payloads=payloads,
        success=not misrouted,
        misrouted=misrouted,
        stages=tuple(stages),
    )
