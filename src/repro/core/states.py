"""Switch-state bit vectors — the setup problem's output format.

Section I: *"We give the permutation D to the machine.  It returns
N log N − N/2 bits, where each bit is the state of a switch in the
Benes network."*  This module packs a per-column state assignment into
exactly that bit vector (and back): bit ``s * N/2 + i`` is the state of
switch ``i`` in column ``s``, packed MSB-first into bytes.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import SwitchStateError
from .topology import stage_count, switch_count

__all__ = ["pack_states", "unpack_states", "state_bit_count"]


def state_bit_count(order: int) -> int:
    """Exactly ``N log N - N/2`` bits for ``B(order)``."""
    return switch_count(order)


def pack_states(states: Sequence[Sequence[int]]) -> bytes:
    """Pack per-column switch states into the paper's bit vector.

    >>> pack_states([[1], [0], [1]]).hex()
    'a0'
    """
    bits: List[int] = []
    for column in states:
        for state in column:
            if state not in (0, 1):
                raise SwitchStateError(
                    f"invalid switch state {state!r}"
                )
            bits.append(int(state))
    out = bytearray((len(bits) + 7) // 8)
    for position, value in enumerate(bits):
        if value:
            out[position // 8] |= 0x80 >> (position % 8)
    return bytes(out)


def unpack_states(data: bytes, order: int) -> List[List[int]]:
    """Inverse of :func:`pack_states` for a ``B(order)`` network.

    >>> unpack_states(bytes([0x80]), 1)
    [[1]]
    """
    n_bits = state_bit_count(order)
    if len(data) != (n_bits + 7) // 8:
        raise SwitchStateError(
            f"need {(n_bits + 7) // 8} bytes for B({order}), "
            f"got {len(data)}"
        )
    per_stage = (1 << order) // 2
    states: List[List[int]] = []
    position = 0
    for _stage in range(stage_count(order)):
        column = []
        for _switch in range(per_stage):
            byte = data[position // 8]
            column.append((byte >> (7 - position % 8)) & 1)
            position += 1
        states.append(column)
    # trailing pad bits must be zero (detects truncated/corrupt data)
    while position < len(data) * 8:
        byte = data[position // 8]
        if (byte >> (7 - position % 8)) & 1:
            raise SwitchStateError("nonzero padding bits")
        position += 1
    return states
