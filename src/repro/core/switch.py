"""The two-state binary switch (Fig. 2) and its self-setting control
logic (Fig. 3).

A binary switch has two inputs (*upper*, *lower*) and two outputs.  In
state ``STRAIGHT`` (the paper's state 0) the upper input connects to the
upper output; in state ``CROSS`` (state 1) the inputs are exchanged.

The paper's self-routing rule: the switch in stage ``b`` — or in the
mirror stage ``2n-2-b`` — of ``B(n)`` examines **bit b of the destination
tag carried by its upper input** and sets itself to that bit.  With the
optional *omega bit* extension, a switch in stages ``0 .. n-2`` forces
itself ``STRAIGHT`` whenever the omega bit accompanying the tags is set,
which makes every Omega(n) permutation realizable (Section II).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Tuple

from ..errors import SwitchStateError
from .bits import bit

__all__ = ["SwitchState", "STRAIGHT", "CROSS", "BinarySwitch", "Signal",
           "validate_stuck_switches"]


def validate_stuck_switches(stuck_switches, n_stages: int,
                            switches_per_stage: int) -> None:
    """Validate a fault map ``{(stage, switch_index): state}`` against a
    network with ``n_stages`` columns of ``switches_per_stage`` switches.

    Shared by every engine that supports fault injection (the
    structural network, the integer fast path, the vectorized batch
    kernel) so they agree byte-for-byte on which maps are legal —
    a prerequisite for differential fault campaigns (:mod:`repro.verify`).
    """
    for key, state in stuck_switches.items():
        try:
            stage, index = key
        except (TypeError, ValueError):
            raise SwitchStateError(
                f"stuck_switches keys must be (stage, switch) pairs, "
                f"got {key!r}"
            )
        if not 0 <= stage < n_stages:
            raise SwitchStateError(f"no stage {stage}")
        if not 0 <= index < switches_per_stage:
            raise SwitchStateError(f"no switch {index} in stage {stage}")
        if state not in (0, 1):
            raise SwitchStateError(f"invalid stuck state {state!r}")


class SwitchState(IntEnum):
    """The two states of a binary switch (Fig. 2)."""

    STRAIGHT = 0
    CROSS = 1

    def __invert__(self) -> "SwitchState":
        return SwitchState(1 - int(self))


STRAIGHT = SwitchState.STRAIGHT
CROSS = SwitchState.CROSS


@dataclass(frozen=True)
class Signal:
    """A value travelling through the network together with its routing
    metadata.

    Attributes:
        tag: the destination tag ``D_i`` (``log N`` bits).
        payload: the data being routed (opaque to the network).
        omega: the optional *omega bit*; when true, switches in the first
            ``n-1`` stages force themselves straight.
        source: the input terminal the signal entered at (for traces).
    """

    tag: int
    payload: object = None
    omega: bool = False
    source: Optional[int] = None

    def __repr__(self) -> str:  # keep traces compact
        extra = f", payload={self.payload!r}" if self.payload is not None else ""
        return f"Signal(tag={self.tag}{extra})"


class BinarySwitch:
    """A single two-state switch, optionally self-setting.

    The switch can be driven in two ways:

    - :meth:`set_state` + :meth:`transfer` — external control (the
      "disable the self-setting logic" mode of Section I, used by the
      Waksman setup);
    - :meth:`self_route` — the paper's dynamic control: the state is
      computed from bit ``control_bit`` of the upper input's tag.
    """

    __slots__ = ("_state",)

    def __init__(self, state: SwitchState = STRAIGHT):
        self._state = SwitchState(state)

    @property
    def state(self) -> SwitchState:
        """Current state."""
        return self._state

    def set_state(self, state: "SwitchState | int") -> None:
        """Externally force the switch state (0 straight / 1 cross)."""
        if state not in (0, 1):
            raise SwitchStateError(f"switch state must be 0 or 1, got {state!r}")
        self._state = SwitchState(state)

    def transfer(self, upper, lower) -> Tuple[object, object]:
        """Pass the two inputs through the switch in its current state.

        Returns ``(upper_output, lower_output)``.
        """
        if self._state is STRAIGHT:
            return upper, lower
        return lower, upper

    def self_route(self, upper: Signal, lower: Signal, control_bit: int,
                   force_straight_on_omega: bool = False
                   ) -> Tuple[Signal, Signal]:
        """Set the state from the upper input's tag, then transfer.

        ``control_bit`` is the tag bit examined (the ``b`` of Fig. 3).
        When ``force_straight_on_omega`` is true and the upper signal
        carries ``omega=True``, the switch goes straight regardless of
        the tag — the omega-bit extension for Omega(n) permutations.
        """
        if force_straight_on_omega and upper.omega:
            self._state = STRAIGHT
        else:
            self._state = SwitchState(bit(upper.tag, control_bit))
        return self.transfer(upper, lower)

    def __repr__(self) -> str:
        return f"BinarySwitch({self._state.name})"
