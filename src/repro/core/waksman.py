"""Serial Benes setup by the looping algorithm (Waksman, 1968).

The paper contrasts its O(log N) self-routing control with the best
known *serial* setup algorithm, which computes explicit switch states
for an arbitrary permutation in ``O(N log N)`` time.  This module
implements that algorithm against the same flat topology used by
:class:`~repro.core.benes.BenesNetwork`, providing the "disable the
self-setting logic and set up the switches externally" mode under which
the network realizes all ``N!`` permutations.

Algorithm sketch (per recursion level): each input pair ``(2i, 2i+1)``
must split across the two ``B(n-1)`` sub-networks, and so must each
output pair ``(2j, 2j+1)``.  These constraints form disjoint cycles
alternating between input pairs and output pairs; walking each cycle
("looping") produces a consistent sub-network assignment, from which the
first- and last-column states follow and two half-size problems remain.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ..errors import InvalidPermutationError
from .bits import log2_exact
from .permutation import Permutation

__all__ = ["setup_states", "looping_assignment"]

PermutationLike = Union[Permutation, Sequence[int]]


def looping_assignment(tags: Sequence[int]) -> List[int]:
    """Assign each input terminal to a sub-network (0 = upper,
    1 = lower) such that

    - the two inputs of every first-column switch use different
      sub-networks, and
    - the two signals destined to the two outputs of every last-column
      switch use different sub-networks.

    Returns ``sub`` with ``sub[t]`` in {0, 1} for every input ``t``.
    """
    n_terminals = len(tags)
    inverse = [0] * n_terminals
    for t, d in enumerate(tags):
        inverse[d] = t

    sub: List[int] = [-1] * n_terminals
    for start in range(n_terminals):
        if sub[start] != -1:
            continue
        t, side = start, 0
        while sub[t] == -1:
            sub[t] = side
            partner = t ^ 1          # shares an input switch with t
            sub[partner] = 1 - side
            # The signal from `partner` exits at output tags[partner];
            # the sibling output must be fed from the other sub-network,
            # i.e. from sub-network `side` — continue the loop there.
            t = inverse[tags[partner] ^ 1]
        if sub[t] != side:
            raise AssertionError(
                "looping produced an inconsistent cycle — "
                "input was not a permutation?"
            )
    return sub


def _setup(tags: List[int], order: int) -> List[List[int]]:
    """Recursive core: switch states per column for a ``2^order``-line
    sub-problem whose destination tags are ``tags`` (local labels)."""
    if order == 1:
        return [[0 if tags[0] == 0 else 1]]

    half = len(tags) // 2
    sub = looping_assignment(tags)

    first = [sub[2 * i] for i in range(half)]
    # first-column switch i: state 0 sends input 2i up; sub[2i] == 1
    # means input 2i must go down, i.e. cross.
    inverse = [0] * len(tags)
    for t, d in enumerate(tags):
        inverse[d] = t
    last = [sub[inverse[2 * j]] for j in range(half)]
    # last-column switch j: output 2j is its upper output; if the signal
    # destined there travels the lower sub-network (sub == 1) the switch
    # must cross.

    upper_tags = [0] * half
    lower_tags = [0] * half
    for t in range(len(tags)):
        local_in = t >> 1            # sub-network input index
        local_out = tags[t] >> 1     # sub-network output index
        if sub[t] == 0:
            upper_tags[local_in] = local_out
        else:
            lower_tags[local_in] = local_out

    upper_states = _setup(upper_tags, order - 1)
    lower_states = _setup(lower_tags, order - 1)
    middle = [up + low for up, low in zip(upper_states, lower_states)]
    return [first] + middle + [last]


def setup_states(perm: PermutationLike) -> List[List[int]]:
    """Compute switch states realizing an **arbitrary** permutation on
    ``B(n)``.

    The result plugs straight into
    :meth:`repro.core.benes.BenesNetwork.route_with_states`:

    >>> from repro.core.benes import BenesNetwork
    >>> states = setup_states([1, 3, 2, 0])       # not in F(2)!
    >>> BenesNetwork(2).route_with_states(states).realized
    Permutation((1, 3, 2, 0))

    Runs in ``O(N log N)`` time, the serial bound the paper quotes.
    """
    perm = perm if isinstance(perm, Permutation) else Permutation(perm)
    order = log2_exact(perm.size)
    if order < 1:
        raise InvalidPermutationError("need at least 2 terminals")
    return _setup(list(perm.as_tuple()), order)
