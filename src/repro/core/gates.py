"""Gate-level cost model of the self-routing network.

The paper's "very simple logic ... in each switch" (Fig. 3) and its
closing argument — a B(n) transit is a few gate delays per stage,
versus full instruction broadcasts per routing step on a PE network —
are quantified here with a conventional two-level switch model:

data path (per payload bit, per switch)
    each of the two outputs is ``(a AND NOT s) OR (b AND s)``:
    2 AND + 1 OR gates, two gate levels; one shared NOT for ``s``.

control (per switch)
    the select line ``s`` is **one wired tag bit** of the upper input
    (stage ``b`` reads bit ``b``) — zero gates, zero levels; this is
    exactly why the scheme is "self-routing": no computation happens
    before the data can move.

The resulting closed forms feed the CLM-NETS ablation: gate counts and
critical-path lengths for the network and, for Section IV, the register
bits required for pipelined operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError
from .topology import stage_count, switch_count

__all__ = [
    "GateCosts",
    "switch_gates",
    "network_gates",
    "SWITCH_LEVELS",
]

#: gate levels through one switch's data path (AND then OR).
SWITCH_LEVELS = 2


@dataclass(frozen=True)
class GateCosts:
    """Gate-level cost summary.

    Attributes:
        and_gates / or_gates / not_gates: combinational gate counts.
        levels: critical path in gate levels.
        register_bits: bits of inter-stage registers needed for the
            Section IV pipelined mode (0 for combinational operation).
    """

    and_gates: int
    or_gates: int
    not_gates: int
    levels: int
    register_bits: int = 0

    @property
    def total_gates(self) -> int:
        """All combinational gates."""
        return self.and_gates + self.or_gates + self.not_gates


def switch_gates(word_width: int) -> GateCosts:
    """Gate cost of one self-setting binary switch moving
    ``word_width``-bit words (payload + the tag itself).

    Two 2:1 muxes per word bit plus one inverter for the select line;
    the select line itself is a wired tag bit (no gates).
    """
    if word_width < 1:
        raise InvalidParameterError(f"word width must be >= 1, got {word_width}")
    return GateCosts(
        and_gates=4 * word_width,   # 2 per output per bit
        or_gates=2 * word_width,    # 1 per output per bit
        not_gates=1,                # shared select inverter
        levels=SWITCH_LEVELS,
    )


def network_gates(order: int, word_width: int,
                  pipelined: bool = False) -> GateCosts:
    """Gate cost of the full self-routing ``B(order)`` for
    ``word_width``-bit words.

    Combinational delay is ``2 levels x (2 log N - 1) stages``; with
    ``pipelined=True`` the inter-stage register bits
    (``N x word_width`` per boundary, ``2 log N - 2`` boundaries) are
    included and the delay becomes per-stage (one clock each).
    """
    per_switch = switch_gates(word_width)
    n_switches = switch_count(order)
    stages = stage_count(order)
    registers = 0
    if pipelined:
        boundaries = stages - 1
        registers = boundaries * (1 << order) * word_width
    return GateCosts(
        and_gates=per_switch.and_gates * n_switches,
        or_gates=per_switch.or_gates * n_switches,
        not_gates=per_switch.not_gates * n_switches,
        levels=SWITCH_LEVELS * stages,
        register_bits=registers,
    )
