"""Pipelined operation of the self-routing network (Section IV).

The paper notes that with registers between stages the network can
accept a *new N-element vector every clock period* — not necessarily
under the same permutation — with the first permuted vector emerging
after ``2 log N - 1`` clocks and each subsequent vector after one more.

:class:`PipelinedBenes` models that register file: latch ``s`` holds the
row vector waiting at the input of switch column ``s``.  Each
:meth:`clock` advances every occupied latch through its column (applying
the self-routing control) and across the following link, optionally
injects a fresh vector at the input, and emits the vector (if any)
leaving the last column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import SizeMismatchError
from .benes import BenesNetwork
from .permutation import Permutation
from .routing import RouteResult, collect_result
from .switch import Signal

__all__ = ["PipelinedBenes", "PipelineOutput"]

PermutationLike = Union[Permutation, Sequence[int]]


@dataclass(frozen=True)
class PipelineOutput:
    """A vector emerging from the pipeline.

    Attributes:
        entered_at: clock index at which the vector was injected.
        emerged_at: clock index at which it left the last column.
        result: the routing outcome for this vector.
    """

    entered_at: int
    emerged_at: int
    result: RouteResult

    @property
    def latency(self) -> int:
        """Clocks from injection to emergence; always ``2 log N - 1``."""
        return self.emerged_at - self.entered_at


class _InFlight:
    """A vector travelling through the pipeline."""

    __slots__ = ("rows", "tags", "entered_at")

    def __init__(self, rows: List[Signal], tags: Tuple[int, ...],
                 entered_at: int):
        self.rows = rows
        self.tags = tags
        self.entered_at = entered_at


class PipelinedBenes:
    """A ``B(order)`` network with inter-stage registers.

    >>> pipe = PipelinedBenes(2)
    >>> outs = pipe.run([[0, 1, 2, 3], [3, 2, 1, 0]])
    >>> [o.latency for o in outs]
    [3, 3]
    """

    def __init__(self, order: int):
        self._network = BenesNetwork(order)
        self._latches: List[Optional[_InFlight]] = (
            [None] * self._network.n_stages
        )
        self._clock = 0

    @property
    def order(self) -> int:
        """``n``: the network is ``B(n)``."""
        return self._network.order

    @property
    def n_terminals(self) -> int:
        """Vector width ``N``."""
        return self._network.n_terminals

    @property
    def latency(self) -> int:
        """Pipeline depth: ``2 log N - 1`` clocks."""
        return self._network.n_stages

    @property
    def clock_count(self) -> int:
        """Clocks elapsed so far."""
        return self._clock

    @property
    def occupancy(self) -> int:
        """Number of vectors currently in flight."""
        return sum(1 for latch in self._latches if latch is not None)

    # ------------------------------------------------------------------

    def _advance_one(self, flight: _InFlight, stage: int) -> _InFlight:
        topo = self._network.topology
        ctrl = topo.control_bit(stage)
        rows, _ = self._network._switch_column_selfset(
            flight.rows, ctrl, force_straight=False
        )
        if stage < self._network.n_stages - 1:
            rows = topo.apply_link(stage, rows)
        flight.rows = rows
        return flight

    def clock(self, tags: Optional[PermutationLike] = None,
              payloads: Optional[Sequence] = None
              ) -> Optional[PipelineOutput]:
        """Advance the pipeline one clock period.

        Args:
            tags: destination tags of a fresh vector to inject this
                clock, or ``None`` to inject nothing (a bubble).
            payloads: data accompanying the fresh vector.

        Returns:
            the vector leaving the network this clock, if any.
        """
        n_stages = self._network.n_stages
        emitted: Optional[PipelineOutput] = None

        last = self._latches[n_stages - 1]
        if last is not None:
            final = self._advance_one(last, n_stages - 1)
            result = collect_result(final.tags, final.rows)
            emitted = PipelineOutput(
                entered_at=last.entered_at,
                emerged_at=self._clock,
                result=result,
            )

        for stage in range(n_stages - 1, 0, -1):
            moving = self._latches[stage - 1]
            self._latches[stage] = (
                self._advance_one(moving, stage - 1)
                if moving is not None else None
            )

        if tags is not None:
            signals = self._network._make_signals(tags, payloads)
            self._latches[0] = _InFlight(
                rows=signals,
                tags=tuple(sig.tag for sig in signals),
                entered_at=self._clock,
            )
        else:
            self._latches[0] = None

        self._clock += 1
        return emitted

    def drain(self) -> List[PipelineOutput]:
        """Clock bubbles until the pipeline is empty; return everything
        that emerges, in order."""
        outputs: List[PipelineOutput] = []
        while self.occupancy:
            out = self.clock()
            if out is not None:
                outputs.append(out)
        return outputs

    def run(self, vectors: Sequence[PermutationLike],
            payloads: Optional[Sequence[Sequence]] = None
            ) -> List[PipelineOutput]:
        """Stream a sequence of vectors back-to-back and drain.

        Each entry of ``vectors`` is a full destination-tag vector (the
        permutations need not be equal).  Returns one
        :class:`PipelineOutput` per vector, in injection order.
        """
        if payloads is not None and len(payloads) != len(vectors):
            raise SizeMismatchError(
                f"{len(payloads)} payload vectors for {len(vectors)} "
                "tag vectors"
            )
        outputs: List[PipelineOutput] = []
        for k, tags in enumerate(vectors):
            data = payloads[k] if payloads is not None else None
            out = self.clock(tags, data)
            if out is not None:
                outputs.append(out)
        outputs.extend(self.drain())
        return outputs
