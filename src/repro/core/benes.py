"""The self-routing Benes network.

:class:`BenesNetwork` is the structural network of Fig. 1 driven either
by the paper's self-routing control (Section I) or by externally
supplied switch states (the "disable the self-setting logic" mode, used
together with :mod:`repro.core.waksman` to realize arbitrary
permutations).

Self-routing control recap: signals carry destination tags; the switch
in column ``s`` sets itself to bit ``min(s, 2n-2-s)`` of its **upper**
input's tag.  The class ``F(n)`` of permutations this realizes is
characterized in :mod:`repro.core.membership`.

The *omega mode* (Section II) forces columns ``0 .. n-2`` straight,
turning the remaining ``n`` columns into Lawrie's omega network so that
every ``Omega(n)`` permutation becomes realizable.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import List, Optional, Sequence, Tuple, Union

from .. import obs as _obs
from ..obs import spans as _spans
from ..accel.plans import cached_topology
from ..errors import (
    RoutingError,
    SizeMismatchError,
    SwitchStateError,
)
from .bits import bit as _tag_bit
from .permutation import Permutation
from .routing import RouteResult, StageTrace, collect_result
from .switch import (
    STRAIGHT,
    BinarySwitch,
    Signal,
    SwitchState,
    validate_stuck_switches,
)
from .topology import BenesTopology

__all__ = ["BenesNetwork"]

PermutationLike = Union[Permutation, Sequence[int]]


class BenesNetwork:
    """An ``N = 2^order`` input/output Benes network ``B(order)``.

    The network object is stateless between calls: each :meth:`route` /
    :meth:`route_with_states` pass creates fresh switch instances, so a
    single network can be shared freely.

    The paper's control rule reads the **upper** input's tag; passing
    ``control="lower"`` builds the mirror-image variant in which each
    switch obeys its lower input instead (an ablation of that design
    choice).  By the network's vertical symmetry the lower-control
    network realizes exactly the complement-conjugated class: ``D`` is
    lower-routable iff ``i -> ~D(~i)`` is upper-routable.

    >>> net = BenesNetwork(3)
    >>> net.n_terminals, net.n_stages, net.n_switches
    (8, 5, 20)
    """

    def __init__(self, order: int, control: str = "upper"):
        if control not in ("upper", "lower"):
            raise SwitchStateError(
                f"control must be 'upper' or 'lower', got {control!r}"
            )
        # Shared LRU: many short-lived networks of one order (analysis
        # sweeps, tests) reuse a single immutable topology.
        self._topology = cached_topology(order)
        self._control = control

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """The paper's ``n``: ``N = 2^n`` terminals."""
        return self._topology.order

    @property
    def n_terminals(self) -> int:
        """Number of inputs (= outputs) ``N``."""
        return self._topology.n_terminals

    @property
    def n_stages(self) -> int:
        """Number of switch columns, ``2n - 1``."""
        return self._topology.n_stages

    @property
    def n_switches(self) -> int:
        """Total number of binary switches, ``N log N - N/2``."""
        return self._topology.n_switches

    @property
    def delay(self) -> int:
        """Transmission delay in switch stages (gate levels):
        ``2 log N - 1``."""
        return self.n_stages

    @property
    def topology(self) -> BenesTopology:
        """The underlying flat topology (columns + links)."""
        return self._topology

    @property
    def control(self) -> str:
        """Which input's tag the switches obey: ``"upper"`` (the
        paper's rule) or ``"lower"`` (the mirror ablation)."""
        return self._control

    def __repr__(self) -> str:
        if self._control != "upper":
            return (f"BenesNetwork(order={self.order}, "
                    f"control={self._control!r})")
        return f"BenesNetwork(order={self.order})"

    # ------------------------------------------------------------------
    # Input preparation
    # ------------------------------------------------------------------

    def _make_signals(self, tags: PermutationLike,
                      payloads: Optional[Sequence] = None,
                      omega: bool = False) -> List[Signal]:
        perm = tags if isinstance(tags, Permutation) else Permutation(tags)
        if perm.size != self.n_terminals:
            raise SizeMismatchError(
                f"permutation of size {perm.size} on a network with "
                f"{self.n_terminals} terminals"
            )
        if payloads is None:
            payloads = list(range(self.n_terminals))
        elif len(payloads) != self.n_terminals:
            raise SizeMismatchError(
                f"{len(payloads)} payloads for {self.n_terminals} inputs"
            )
        return [
            Signal(tag=perm[i], payload=payloads[i], omega=omega, source=i)
            for i in range(self.n_terminals)
        ]

    # ------------------------------------------------------------------
    # Self-routing
    # ------------------------------------------------------------------

    def route(self, tags: PermutationLike,
              payloads: Optional[Sequence] = None, *,
              omega_mode: bool = False,
              trace: bool = False,
              require_success: bool = False,
              stuck_switches: Optional[dict] = None) -> RouteResult:
        """Route one vector through the network under self-routing.

        All option arguments are keyword-only.

        Args:
            tags: the permutation ``D`` — ``tags[i]`` is the destination
                of input ``i``.
            payloads: optional data items; defaults to ``0..N-1``.
            omega_mode: set the omega bit on every signal, forcing the
                first ``n-1`` columns straight (realizes ``Omega(n)``).
            trace: record a :class:`StageTrace` per column.
            require_success: raise :class:`RoutingError` when the
                permutation is not realized (i.e. ``D`` is outside the
                self-routable class).
            stuck_switches: fault injection — a mapping
                ``{(stage, switch_index): state}`` of switches whose
                control logic has failed stuck at ``state`` (0 or 1);
                they ignore the tags entirely.

        Returns:
            a :class:`RouteResult`; ``result.success`` tells whether
            ``D`` was realized.
        """
        if stuck_switches:
            validate_stuck_switches(stuck_switches, self.n_stages,
                                    self.n_terminals // 2)
        enabled = _obs.enabled()
        tracing = _obs.trace_active()
        t0 = _perf_counter() if (enabled or tracing) else 0.0
        mode = "omega" if omega_mode else "self"
        signals = self._make_signals(tags, payloads, omega=omega_mode)
        route_span = None
        if tracing:
            # Manual span (not the context manager): the body below has
            # early raises to stamp with success=False first.
            route_span = _spans.start_span("route", mode=mode,
                                           order=self.order)
            _obs.trace_event(
                "route_start",
                mode=mode,
                order=self.order,
                n=self.n_terminals,
                tags=[s.tag for s in signals],
                faults=len(stuck_switches) if stuck_switches else 0,
            )
        omega_stages = self.order - 1  # columns forced straight in omega mode
        rows = signals
        traces: List[StageTrace] = []
        for stage in range(self.n_stages):
            ctrl = self._topology.control_bit(stage)
            force = omega_mode and stage < omega_stages
            stuck = (
                {idx: st for (s, idx), st in stuck_switches.items()
                 if s == stage}
                if stuck_switches else None
            )
            rows, states = self._switch_column_selfset(
                rows, ctrl, force, stuck
            )
            if enabled:
                _obs.inc(f"benes.route.stage_cross.{stage}",
                         sum(int(st) for st in states))
            if tracing:
                _obs.trace_event(
                    "stage",
                    stage=stage,
                    control_bit=ctrl,
                    states=[int(st) for st in states],
                    cross=sum(int(st) for st in states),
                )
            if trace:
                traces.append(StageTrace(
                    stage=stage,
                    control_bit=ctrl,
                    input_tags=tuple(s.tag for s in signals),
                    states=states,
                    output_tags=tuple(s.tag for s in rows),
                ))
            if stage < self.n_stages - 1:
                rows = self._topology.apply_link(stage, rows)
            signals = rows
        result = collect_result(
            [s.tag for s in self._make_signals(tags)], rows, traces
        )
        if enabled:
            _obs.inc("benes.route.calls")
            _obs.inc(f"benes.route.{mode}.success" if result.success
                     else f"benes.route.{mode}.failure")
            if stuck_switches:
                _obs.inc("benes.route.faulted.calls")
            _obs.observe("benes.route.seconds", _perf_counter() - t0)
        if tracing:
            _obs.trace_event(
                "deliver",
                mode=mode,
                success=result.success,
                delivered=list(result.delivered),
                misrouted=list(result.misrouted),
                seconds=_perf_counter() - t0,
            )
        if route_span is not None:
            route_span.finish(success=result.success)
        if require_success and not result.success:
            raise RoutingError(
                f"permutation {tuple(tags)} is not self-routable on "
                f"B({self.order}); misrouted outputs: {result.misrouted}"
            )
        return result

    def _switch_column_selfset(self, rows: List[Signal], ctrl: int,
                               force_straight: bool,
                               stuck: Optional[dict] = None
                               ) -> Tuple[List[Signal], Tuple[SwitchState, ...]]:
        out: List[Signal] = [None] * len(rows)  # type: ignore[list-item]
        states: List[SwitchState] = []
        for i in range(len(rows) // 2):
            switch = BinarySwitch()
            upper, lower = rows[2 * i], rows[2 * i + 1]
            if stuck is not None and i in stuck:
                switch.set_state(stuck[i])
                up_out, low_out = switch.transfer(upper, lower)
            elif force_straight:
                switch.set_state(STRAIGHT)
                up_out, low_out = switch.transfer(upper, lower)
            elif self._control == "lower":
                # mirror rule: the lower input claims the output port
                # named by its tag bit (bit 1 -> stay low -> straight)
                switch.set_state(1 - _tag_bit(lower.tag, ctrl))
                up_out, low_out = switch.transfer(upper, lower)
            else:
                up_out, low_out = switch.self_route(upper, lower, ctrl)
            out[2 * i], out[2 * i + 1] = up_out, low_out
            states.append(switch.state)
        return out, tuple(states)

    def realizes(self, tags: PermutationLike) -> bool:
        """True iff the self-routing network delivers every input of
        ``D`` to its tagged output — i.e. ``D`` is in ``F(order)``."""
        return self.route(tags).success

    def permute(self, tags: PermutationLike, data: Sequence, *,
                omega_mode: bool = False) -> list:
        """Route ``data`` according to ``D`` and return the output
        vector; raises :class:`RoutingError` if ``D`` is not realizable
        under the selected control mode."""
        result = self.route(tags, payloads=list(data),
                            omega_mode=omega_mode, require_success=True)
        return list(result.payloads)

    # ------------------------------------------------------------------
    # External switch control
    # ------------------------------------------------------------------

    def _check_states(self, states: Sequence[Sequence[int]]) -> None:
        if len(states) != self.n_stages:
            raise SwitchStateError(
                f"need {self.n_stages} stage-state vectors, got {len(states)}"
            )
        per_stage = self.n_terminals // 2
        for s, column in enumerate(states):
            if len(column) != per_stage:
                raise SwitchStateError(
                    f"stage {s}: need {per_stage} states, got {len(column)}"
                )
            for state in column:
                if state not in (0, 1):
                    raise SwitchStateError(
                        f"stage {s}: invalid switch state {state!r}"
                    )

    def route_with_states(self, states: Sequence[Sequence[int]],
                          payloads: Optional[Sequence] = None, *,
                          trace: bool = False) -> RouteResult:
        """Drive the network with externally supplied switch states.

        ``states[s][i]`` is the state (0 straight / 1 cross) of switch
        ``i`` in column ``s``.  The ``requested`` tags of the returned
        result are the realized destinations themselves, so
        ``result.success`` is always True; what matters is
        ``result.realized`` — the permutation this setting performs.
        """
        self._check_states(states)
        enabled = _obs.enabled()
        t0 = _perf_counter() if enabled else 0.0
        if payloads is None:
            payloads = list(range(self.n_terminals))
        # Tags are unknown under external control; carry source indices
        # and fill tags in afterwards from where each source lands.
        rows = [
            Signal(tag=0, payload=payloads[i], source=i)
            for i in range(self.n_terminals)
        ]
        traces: List[StageTrace] = []
        for stage in range(self.n_stages):
            column_in = rows
            out: List[Signal] = [None] * len(rows)  # type: ignore[list-item]
            column_states: List[SwitchState] = []
            for i in range(len(rows) // 2):
                switch = BinarySwitch(SwitchState(states[stage][i]))
                up_out, low_out = switch.transfer(rows[2 * i], rows[2 * i + 1])
                out[2 * i], out[2 * i + 1] = up_out, low_out
                column_states.append(switch.state)
            rows = out
            if trace:
                traces.append(StageTrace(
                    stage=stage,
                    control_bit=None,
                    input_tags=tuple(s.source for s in column_in),
                    states=tuple(column_states),
                    output_tags=tuple(s.source for s in rows),
                ))
            if stage < self.n_stages - 1:
                rows = self._topology.apply_link(stage, rows)
        dest = [0] * self.n_terminals
        for output, sig in enumerate(rows):
            dest[sig.source] = output
        realized = Permutation(dest)
        # Re-tag the arrived signals with their realized destinations so
        # collect_result sees a consistent picture.
        rows = [
            Signal(tag=output, payload=sig.payload, source=sig.source)
            for output, sig in enumerate(rows)
        ]
        if enabled:
            _obs.inc("benes.route_with_states.calls")
            _obs.observe("benes.route_with_states.seconds",
                         _perf_counter() - t0)
        return collect_result(realized.as_tuple(), rows, traces)

    def straight_states(self) -> List[List[int]]:
        """An all-straight state assignment (realizes the identity)."""
        return [[0] * (self.n_terminals // 2) for _ in range(self.n_stages)]
