"""Two-pass universality of the self-routing network.

The class ``F(n)`` does not contain every permutation (Fig. 5) and is
not even closed under products — yet **every** permutation can be
performed by *two* passes through the self-routing network with no
external setup at all:

    D  =  omega_2 ∘ omega_1,
    omega_1 ∈ InverseOmega(n) ⊆ F(n),   omega_2 ∈ Omega(n)

- pass 1 routes ``omega_1`` with the ordinary self-routing control
  (inverse-omega permutations are in F by Theorem 3);
- pass 2 routes ``omega_2`` with the *omega bit* set (the Section II
  extension realizes all of Omega(n)).

The decomposition falls out of the Benes structure: its first ``n``
stages are an inverse-omega network "except for some rearrangement of
switches" (Section II).  Running the looping setup for ``D`` and
reading where each signal sits after the first ``n`` columns gives a
mapping ``M``; composing with the *fixed* wire relabeling
``M_straight`` that the all-straight network performs turns it into a
genuine inverse-omega permutation:

    omega_1 = M ∘ M_straight^{-1},      omega_2 = omega_1^{-1} ∘ D.

Verified exhaustively for n <= 3 and on random permutations at larger
sizes (see ``tests/test_twopass.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .benes import BenesNetwork
from .bits import log2_exact
from .permutation import Permutation
from .topology import BenesTopology
from .waksman import setup_states

__all__ = ["two_pass_decomposition", "route_two_pass", "straight_map"]

PermutationLike = Union[Permutation, Sequence[int]]

_STRAIGHT_CACHE: Dict[int, Permutation] = {}


def _first_half_map(states: List[List[int]], order: int) -> Permutation:
    """Where each input sits after the first ``n`` switch columns (and
    the ``n-1`` links between them) of a Waksman-configured ``B(n)``."""
    topology = BenesTopology.build(order)
    n = 1 << order
    rows: List[int] = list(range(n))  # rows[r] = source occupying row r
    for stage in range(order):
        column = states[stage]
        for i in range(n // 2):
            if column[i]:
                rows[2 * i], rows[2 * i + 1] = (
                    rows[2 * i + 1], rows[2 * i]
                )
        if stage < order - 1:
            rows = topology.apply_link(stage, rows)
    middle = [0] * n
    for row, source in enumerate(rows):
        middle[source] = row
    return Permutation(middle)


def straight_map(order: int) -> Permutation:
    """The fixed wire permutation the first half performs with every
    switch straight — the 'rearrangement of switches' between the Benes
    half and a true inverse-omega network.  Shared with the vectorized
    two-pass factorization (:mod:`repro.accel.setup`)."""
    if order not in _STRAIGHT_CACHE:
        n = 1 << order
        straight = [[0] * (n // 2) for _ in range(2 * order - 1)]
        _STRAIGHT_CACHE[order] = _first_half_map(straight, order)
    return _STRAIGHT_CACHE[order]


_straight_map = straight_map  # back-compat alias for the private name


def two_pass_decomposition(perm: PermutationLike
                           ) -> Tuple[Permutation, Permutation]:
    """Split an arbitrary permutation ``D`` into ``(omega_1, omega_2)``
    with ``omega_1.then(omega_2) == D``, ``omega_1`` inverse-omega
    (hence self-routable) and ``omega_2`` omega (routable in omega-bit
    mode).

    >>> first, second = two_pass_decomposition([1, 3, 2, 0])
    >>> first.then(second).as_tuple()
    (1, 3, 2, 0)
    """
    perm = perm if isinstance(perm, Permutation) else Permutation(perm)
    order = log2_exact(perm.size)
    middle = _first_half_map(setup_states(perm), order)
    first = middle.then(_straight_map(order).inverse())
    second = first.inverse().then(perm)
    return first, second


def route_two_pass(perm: PermutationLike, data: Sequence,
                   network: Optional[BenesNetwork] = None) -> list:
    """Route ``data`` by an **arbitrary** permutation using two
    self-routed transits of one Benes network — no external setup.

    Pass 1 uses the ordinary control; pass 2 sets the omega bit.

    >>> route_two_pass([1, 3, 2, 0], list("abcd"))
    ['d', 'a', 'c', 'b']
    """
    perm = perm if isinstance(perm, Permutation) else Permutation(perm)
    if network is None:
        network = BenesNetwork(perm.order)
    first, second = two_pass_decomposition(perm)
    intermediate = network.route(first, payloads=list(data),
                                 require_success=True)
    final = network.route(second, payloads=list(intermediate.payloads),
                          omega_mode=True, require_success=True)
    return list(final.payloads)
