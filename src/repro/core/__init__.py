"""Core of the reproduction: the Benes network of Fig. 1, the
self-routing control of Section I, the class-F machinery of Section II,
external (Waksman) setup, and pipelined operation (Section IV)."""

from .benes import BenesNetwork
from .fastpath import fast_route_with_states, fast_self_route
from .gates import GateCosts, network_gates, switch_gates
from .membership import (
    derive_upper_lower,
    enumerate_class_f,
    first_failure,
    in_class_f,
    in_class_f_simulated,
)
from .permutation import Permutation, identity, random_permutation
from .pipeline import PipelinedBenes, PipelineOutput
from .routing import RouteResult, StageTrace
from .sampling import (
    class_f_count_recursive,
    pair_weight,
    random_class_f,
    random_class_f_uniform,
)
from .states import pack_states, state_bit_count, unpack_states
from .twopass import route_two_pass, two_pass_decomposition
from .switch import CROSS, STRAIGHT, BinarySwitch, Signal, SwitchState
from .topology import BenesTopology, control_bit, stage_count, switch_count
from .waksman import looping_assignment, setup_states

__all__ = [
    "BenesNetwork",
    "BenesTopology",
    "BinarySwitch",
    "CROSS",
    "GateCosts",
    "STRAIGHT",
    "Permutation",
    "PipelineOutput",
    "PipelinedBenes",
    "RouteResult",
    "Signal",
    "StageTrace",
    "SwitchState",
    "class_f_count_recursive",
    "control_bit",
    "derive_upper_lower",
    "enumerate_class_f",
    "fast_route_with_states",
    "fast_self_route",
    "first_failure",
    "identity",
    "in_class_f",
    "in_class_f_simulated",
    "looping_assignment",
    "network_gates",
    "pack_states",
    "pair_weight",
    "random_class_f",
    "random_class_f_uniform",
    "random_permutation",
    "route_two_pass",
    "setup_states",
    "stage_count",
    "state_bit_count",
    "switch_count",
    "switch_gates",
    "two_pass_decomposition",
    "unpack_states",
]
