"""Bit-field utilities matching the paper's notation.

The paper writes ``(i)_j`` for bit ``j`` of the binary representation of
``i`` (bit 0 is least significant) and ``(i)_{j..k}`` (``j >= k``) for the
integer whose binary representation is ``(i)_j (i)_{j-1} ... (i)_k``.
These helpers implement that notation plus the handful of structural bit
permutations (reversal, rotation, interleave) used by the permutation
classes in Section II.

All functions are pure and operate on plain ``int`` values.
"""

from __future__ import annotations

from ..errors import InvalidParameterError, NotAPowerOfTwoError

__all__ = [
    "bit",
    "bits_of",
    "from_bits",
    "bit_segment",
    "set_bit",
    "flip_bit",
    "complement",
    "reverse_bits",
    "rotate_left",
    "rotate_right",
    "interleave_bits",
    "deinterleave_bits",
    "is_power_of_two",
    "log2_exact",
    "popcount",
]


def bit(i: int, j: int) -> int:
    """Return ``(i)_j``: bit ``j`` of ``i`` (0 = least significant).

    >>> bit(0b1010, 1)
    1
    >>> bit(0b1010, 2)
    0
    """
    if j < 0:
        raise InvalidParameterError(f"bit index must be non-negative, got {j}")
    return (i >> j) & 1


def bits_of(i: int, n: int) -> tuple:
    """Return the ``n`` low bits of ``i`` as a tuple, most significant
    first — the order in which the paper writes ``i_{n-1} ... i_0``.

    >>> bits_of(0b110, 3)
    (1, 1, 0)
    """
    if n < 0:
        raise InvalidParameterError(f"bit count must be non-negative, got {n}")
    return tuple((i >> j) & 1 for j in range(n - 1, -1, -1))


def from_bits(bits: "tuple | list") -> int:
    """Inverse of :func:`bits_of`: assemble an integer from bits given
    most significant first.

    >>> from_bits((1, 1, 0))
    6
    """
    value = 0
    for b in bits:
        if b not in (0, 1):
            raise InvalidParameterError(f"bits must be 0 or 1, got {b!r}")
        value = (value << 1) | b
    return value


def bit_segment(i: int, j: int, k: int) -> int:
    """Return ``(i)_{j..k}``: the integer with binary representation
    ``(i)_j (i)_{j-1} ... (i)_k`` (requires ``j >= k >= 0``).

    >>> bit_segment(0b101101, 5, 3)  # top three bits of 101101
    5
    >>> bit_segment(0b101101, 2, 0)
    5
    """
    if j < k or k < 0:
        raise InvalidParameterError(f"need j >= k >= 0, got j={j}, k={k}")
    width = j - k + 1
    return (i >> k) & ((1 << width) - 1)


def set_bit(i: int, j: int, value: int) -> int:
    """Return ``i`` with bit ``j`` forced to ``value`` (0 or 1)."""
    if value not in (0, 1):
        raise InvalidParameterError(f"bit value must be 0 or 1, got {value!r}")
    if value:
        return i | (1 << j)
    return i & ~(1 << j)


def flip_bit(i: int, j: int) -> int:
    """Return ``i^{(j)}``: ``i`` with bit ``j`` complemented.

    This is the paper's cube-neighbour notation: PE(i) connects to
    PE(i^{(b)}) across dimension ``b`` of a cube-connected computer.
    """
    return i ^ (1 << j)


def complement(i: int, n: int) -> int:
    """Return the ``n``-bit ones' complement of ``i``.

    >>> complement(0b0110, 4)
    9
    """
    return i ^ ((1 << n) - 1)


def reverse_bits(i: int, n: int) -> int:
    """Return ``i`` with its ``n``-bit representation reversed
    (the paper's ``i^R``, the bit-reversal permutation of Fig. 4).

    >>> reverse_bits(0b110, 3)
    3
    """
    out = 0
    for _ in range(n):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out

def rotate_left(i: int, n: int, k: int = 1) -> int:
    """Rotate the ``n``-bit representation of ``i`` left by ``k``.

    A left rotation by one is the *perfect shuffle* of the index space:
    ``i_{n-1} i_{n-2} ... i_0 -> i_{n-2} ... i_0 i_{n-1}``.

    >>> rotate_left(0b100, 3)
    1
    """
    if n <= 0:
        raise InvalidParameterError(f"width must be positive, got {n}")
    k %= n
    mask = (1 << n) - 1
    i &= mask
    return ((i << k) | (i >> (n - k))) & mask


def rotate_right(i: int, n: int, k: int = 1) -> int:
    """Rotate the ``n``-bit representation of ``i`` right by ``k``
    (the *unshuffle* of the index space).

    >>> rotate_right(0b001, 3)
    4
    """
    if n <= 0:
        raise InvalidParameterError(f"width must be positive, got {n}")
    return rotate_left(i, n, n - (k % n))


def interleave_bits(r: int, c: int, q: int) -> int:
    """Interleave the ``q``-bit numbers ``r`` and ``c``:
    result bits are ``r_{q-1} c_{q-1} ... r_0 c_0``.

    Used by the *shuffled row-major* indexing of Table I: element
    ``(r, c)`` of a ``2^q x 2^q`` array is stored at
    ``interleave_bits(r, c, q)``.

    >>> interleave_bits(0b11, 0b00, 2)
    10
    """
    out = 0
    for j in range(q - 1, -1, -1):
        out = (out << 2) | (bit(r, j) << 1) | bit(c, j)
    return out


def deinterleave_bits(i: int, q: int) -> tuple:
    """Inverse of :func:`interleave_bits`: split a ``2q``-bit number into
    its odd-position bits (``r``) and even-position bits (``c``).

    >>> deinterleave_bits(10, 2)
    (3, 0)
    """
    r = 0
    c = 0
    for j in range(q - 1, -1, -1):
        r = (r << 1) | bit(i, 2 * j + 1)
        c = (c << 1) | bit(i, 2 * j)
    return r, c


def is_power_of_two(x: int) -> bool:
    """Return True iff ``x`` is a positive exact power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2_exact(x: int) -> int:
    """Return ``log2(x)`` for an exact power of two, else raise
    :class:`~repro.errors.NotAPowerOfTwoError`.

    >>> log2_exact(8)
    3
    """
    if not is_power_of_two(x):
        raise NotAPowerOfTwoError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def popcount(i: int) -> int:
    """Return the number of one bits in ``i`` (``i >= 0``)."""
    if i < 0:
        raise InvalidParameterError(f"popcount requires a non-negative value, got {i}")
    return bin(i).count("1")
