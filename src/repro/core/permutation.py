"""The :class:`Permutation` value type.

The paper manipulates permutations ``D = (D_0, D_1, ..., D_{N-1})`` of
``(0, 1, ..., N-1)`` with the convention that **input i is routed to
output D_i** (``D_i`` is the *destination tag* of input ``i``).  This
module provides an immutable, validated value type for such objects,
together with the algebra (composition, inverse, restriction, block
embedding) used throughout the permutation-class machinery of Section II.
"""

from __future__ import annotations

import random as _random
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import InvalidPermutationError, SizeMismatchError
from . import bits as _bits

__all__ = ["Permutation", "identity", "random_permutation"]


class Permutation:
    """An immutable permutation of ``0..N-1`` in destination-tag form.

    ``p[i]`` is the destination of input ``i``.  Instances are hashable
    and comparable, so they can be collected in sets — the exhaustive
    class-membership counts in :mod:`repro.analysis.cardinality` rely on
    this.
    """

    __slots__ = ("_dest", "_hash")

    def __init__(self, dest: Iterable[int]):
        dest = tuple(dest)
        seen = [False] * len(dest)
        for d in dest:
            if not isinstance(d, int) or isinstance(d, bool):
                raise InvalidPermutationError(
                    f"destination tags must be ints, got {d!r}"
                )
            if not 0 <= d < len(dest):
                raise InvalidPermutationError(
                    f"destination {d} out of range for size {len(dest)}"
                )
            if seen[d]:
                raise InvalidPermutationError(
                    f"destination {d} appears more than once"
                )
            seen[d] = True
        self._dest = dest
        self._hash = hash(dest)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, n_elements: int) -> "Permutation":
        """The identity permutation on ``n_elements`` items."""
        return cls(range(n_elements))

    @classmethod
    def from_mapping(cls, mapping: Callable[[int], int],
                     n_elements: int) -> "Permutation":
        """Build a permutation from a function ``i -> D_i``.

        >>> Permutation.from_mapping(lambda i: (i + 1) % 4, 4)
        Permutation((1, 2, 3, 0))
        """
        return cls(mapping(i) for i in range(n_elements))

    @classmethod
    def from_cycles(cls, cycles: Sequence[Sequence[int]],
                    n_elements: int) -> "Permutation":
        """Build a permutation from disjoint cycles.

        Each cycle ``(a, b, c)`` sends ``a -> b -> c -> a``.

        >>> Permutation.from_cycles([(0, 1, 2)], 4)
        Permutation((1, 2, 0, 3))
        """
        dest = list(range(n_elements))
        touched = set()
        for cycle in cycles:
            for element in cycle:
                if element in touched:
                    raise InvalidPermutationError(
                        f"element {element} appears in two cycles"
                    )
                touched.add(element)
            for pos, element in enumerate(cycle):
                dest[element] = cycle[(pos + 1) % len(cycle)]
        return cls(dest)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._dest)

    def __getitem__(self, i: int) -> int:
        return self._dest[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self._dest)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Permutation):
            return self._dest == other._dest
        if isinstance(other, tuple):
            return self._dest == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Permutation({self._dest!r})"

    @property
    def size(self) -> int:
        """Number of elements N."""
        return len(self._dest)

    @property
    def order(self) -> int:
        """log2(N) when N is a power of two (the paper's ``n``)."""
        return _bits.log2_exact(len(self._dest))

    def as_tuple(self) -> tuple:
        """The raw destination-tag tuple ``(D_0, ..., D_{N-1})``."""
        return self._dest

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def inverse(self) -> "Permutation":
        """The inverse permutation: ``p.inverse()[p[i]] == i``."""
        inv = [0] * len(self._dest)
        for i, d in enumerate(self._dest):
            inv[d] = i
        return Permutation(inv)

    def then(self, other: "Permutation") -> "Permutation":
        """Sequential composition *self first, then other*.

        ``(p.then(q))[i] == q[p[i]]`` — data routed by ``p`` and then by
        ``q``.  This is the natural order for chaining passes through
        permutation networks.
        """
        if len(other) != len(self):
            raise SizeMismatchError(
                f"cannot compose sizes {len(self)} and {len(other)}"
            )
        return Permutation(other._dest[d] for d in self._dest)

    def compose(self, other: "Permutation") -> "Permutation":
        """Function composition ``self ∘ other`` (*other first*):
        ``p.compose(q)[i] == p[q[i]]``."""
        return other.then(self)

    def conjugate_by(self, relabel: "Permutation") -> "Permutation":
        """Return ``relabel ∘ self ∘ relabel^{-1}`` — the same permutation
        expressed in relabelled coordinates."""
        inv = relabel.inverse()
        return relabel.compose(self).compose(inv)

    def power(self, k: int) -> "Permutation":
        """``k``-fold self-composition (``k`` may be negative)."""
        result = Permutation.identity(len(self))
        base = self if k >= 0 else self.inverse()
        for _ in range(abs(k)):
            result = result.then(base)
        return result

    # ------------------------------------------------------------------
    # Application & structure
    # ------------------------------------------------------------------

    def apply(self, data: Sequence) -> list:
        """Route ``data`` through the permutation: the element at input
        ``i`` lands at output ``D_i``.

        >>> Permutation((1, 2, 3, 0)).apply("abcd")
        ['d', 'a', 'b', 'c']
        """
        if len(data) != len(self._dest):
            raise SizeMismatchError(
                f"data of length {len(data)} does not match permutation "
                f"of size {len(self._dest)}"
            )
        out: list = [None] * len(self._dest)
        for i, d in enumerate(self._dest):
            out[d] = data[i]
        return out

    def cycles(self) -> list:
        """Disjoint cycle decomposition (each cycle starts at its
        smallest element; singleton fixed points included)."""
        seen = [False] * len(self._dest)
        out = []
        for start in range(len(self._dest)):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            nxt = self._dest[start]
            while nxt != start:
                cycle.append(nxt)
                seen[nxt] = True
                nxt = self._dest[nxt]
            out.append(tuple(cycle))
        return out

    def fixed_points(self) -> list:
        """Indices with ``D_i == i``."""
        return [i for i, d in enumerate(self._dest) if d == i]

    def is_identity(self) -> bool:
        """True iff every input maps to itself."""
        return all(d == i for i, d in enumerate(self._dest))

    def is_involution(self) -> bool:
        """True iff the permutation is its own inverse."""
        return all(self._dest[d] == i for i, d in enumerate(self._dest))

    def parity(self) -> int:
        """0 for an even permutation, 1 for odd."""
        transpositions = sum(len(c) - 1 for c in self.cycles())
        return transpositions & 1


def identity(n_elements: int) -> Permutation:
    """Convenience alias for :meth:`Permutation.identity`."""
    return Permutation.identity(n_elements)


def random_permutation(n_elements: int,
                       rng: "_random.Random | None" = None) -> Permutation:
    """A uniformly random permutation of ``0..n_elements-1``.

    Pass an explicit ``random.Random`` for reproducibility; tests and
    benchmarks always do.
    """
    rng = rng if rng is not None else _random
    dest = list(range(n_elements))
    rng.shuffle(dest)
    return Permutation(dest)
