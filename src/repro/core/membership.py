"""The class ``F(n)`` of self-routable permutations (Section II).

Two independent deciders are provided:

- :func:`in_class_f_simulated` — route the permutation through the
  structural network of :class:`~repro.core.benes.BenesNetwork` and see
  whether every tag arrives;
- :func:`in_class_f` — the paper's Theorem 1 applied recursively:
  ``D in F(n)`` iff the derived upper/lower sub-permutations ``U`` and
  ``L`` (equations (1) and (2)) are permutations whose high ``n-1`` bits
  are themselves in ``F(n-1)``.

Tests assert the two agree on every permutation they are given; the
recursive form is also the basis of the cardinality counts in
:mod:`repro.analysis.cardinality`.
"""

from __future__ import annotations

from itertools import permutations as _all_permutations
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import InvalidPermutationError
from .benes import BenesNetwork
from .bits import bit, log2_exact
from .permutation import Permutation

__all__ = [
    "derive_upper_lower",
    "in_class_f",
    "in_class_f_simulated",
    "enumerate_class_f",
    "first_failure",
]

PermutationLike = Union[Permutation, Sequence[int]]


def _as_tags(perm: PermutationLike) -> Tuple[int, ...]:
    if isinstance(perm, Permutation):
        return perm.as_tuple()
    return Permutation(perm).as_tuple()


def derive_upper_lower(perm: PermutationLike
                       ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Equations (1) and (2): the destination tags presented to the
    upper and lower ``B(n-1)`` sub-networks after stage 0.

    ``U[i]`` (``L[i]``) is the full tag leaving the upper (lower) output
    of stage-0 switch ``i``.  The switch state is bit 0 of the tag of
    its upper input ``D_{2i}``:

    - if ``(D_{2i})_0 == 0`` the switch is straight, so
      ``U_i = D_{2i}`` and ``L_i = D_{2i+1}``;
    - otherwise it crosses: ``U_i = D_{2i+1}`` and ``L_i = D_{2i}``.
    """
    tags = _as_tags(perm)
    upper: List[int] = []
    lower: List[int] = []
    for i in range(len(tags) // 2):
        d_up, d_low = tags[2 * i], tags[2 * i + 1]
        if bit(d_up, 0) == 0:
            upper.append(d_up)
            lower.append(d_low)
        else:
            upper.append(d_low)
            lower.append(d_up)
    return tuple(upper), tuple(lower)


def _is_perm(values: Sequence[int]) -> bool:
    return sorted(values) == list(range(len(values)))


def _in_f_rec(tags: Tuple[int, ...], order: int) -> bool:
    if order == 1:
        return True  # B(1) is a single switch: both 2-permutations work
    upper, lower = derive_upper_lower(tags)
    upper_hi = tuple(u >> 1 for u in upper)
    lower_hi = tuple(l >> 1 for l in lower)
    if not (_is_perm(upper_hi) and _is_perm(lower_hi)):
        return False
    return _in_f_rec(upper_hi, order - 1) and _in_f_rec(lower_hi, order - 1)


def in_class_f(perm: PermutationLike) -> bool:
    """Theorem 1 decision: is ``D`` realizable by the self-routing
    ``B(n)``?  Runs in ``O(N log N)`` time.

    >>> in_class_f([0, 1, 2, 3])
    True
    >>> in_class_f([1, 3, 2, 0])   # Fig. 5 counterexample
    False
    """
    tags = _as_tags(perm)
    return _in_f_rec(tags, log2_exact(len(tags)))


def in_class_f_simulated(perm: PermutationLike,
                         network: Optional[BenesNetwork] = None) -> bool:
    """Structural decision: actually route ``D`` through ``B(n)`` and
    check that every tag arrives at its output.  Pass an existing
    ``network`` of the right order to reuse its topology."""
    tags = _as_tags(perm)
    order = log2_exact(len(tags))
    if network is None:
        network = BenesNetwork(order)
    elif network.order != order:
        raise InvalidPermutationError(
            f"permutation of size {len(tags)} on B({network.order})"
        )
    return network.route(tags).success


def enumerate_class_f(order: int) -> Iterator[Permutation]:
    """Yield every permutation in ``F(order)`` in lexicographic order.

    Exhaustive over all ``N!`` permutations — intended for ``order <= 3``
    (``8! = 40320``); larger orders are counted by sampling in
    :mod:`repro.analysis.cardinality`.
    """
    n_elements = 1 << order
    for dest in _all_permutations(range(n_elements)):
        if _in_f_rec(dest, order):
            yield Permutation(dest)


def first_failure(perm: PermutationLike) -> Optional[Tuple[int, ...]]:
    """Diagnostic: return the first (smallest) sub-problem at which the
    Theorem 1 recursion fails, as the offending derived tag vector, or
    ``None`` when ``D`` is in F.

    The returned vector is the multiset of high-bit destinations that
    stopped being a permutation — i.e. the concrete conflict inside the
    network.
    """
    tags = _as_tags(perm)
    order = log2_exact(len(tags))

    def rec(tags: Tuple[int, ...], order: int) -> Optional[Tuple[int, ...]]:
        if order == 1:
            return None
        upper, lower = derive_upper_lower(tags)
        for half in (tuple(u >> 1 for u in upper),
                     tuple(l >> 1 for l in lower)):
            if not _is_perm(half):
                return half
            deeper = rec(half, order - 1)
            if deeper is not None:
                return deeper
        return None

    return rec(tags, order)
