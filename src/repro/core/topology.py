"""Flat structural model of the Benes network ``B(n)`` (Fig. 1).

The paper defines ``B(n)`` recursively: a column of ``N/2`` binary
switches, two copies of ``B(n-1)`` (upper and lower), and a final column
of ``N/2`` switches.  This module *flattens* that recursion into

- ``2n - 1`` switch **columns**, each of ``N/2`` switches, where switch
  ``i`` of a column always owns the column-local rows ``2i`` (upper
  input/output) and ``2i + 1`` (lower);
- ``2n - 2`` **links**, one between each pair of adjacent columns.  A
  link is a permutation of rows: ``link[r]`` is the row of the next
  column that output row ``r`` of the previous column wires to.

The link following the first column of ``B(n)`` is the *unshuffle*
(rotate-right of the row index): the upper output of switch ``i`` goes to
input ``i`` of the upper ``B(n-1)`` (row ``i``) and the lower output to
input ``i`` of the lower ``B(n-1)`` (row ``N/2 + i``).  The link before
the last column is the *shuffle* (rotate-left).  Links interior to the
sub-networks are the sub-network's links applied within each half,
recursively — exactly the drawing of Fig. 1.

The stage <-> tag-bit correspondence of the self-routing rule is
``control_bit(s) = min(s, 2n-2-s)`` (Fig. 3): stage ``b`` and its mirror
stage ``2n-2-b`` are both controlled by tag bit ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import InvalidParameterError
from .bits import rotate_left, rotate_right

__all__ = [
    "BenesTopology",
    "stage_count",
    "switch_count",
    "control_bit",
    "unshuffle_link",
    "shuffle_link",
]


def stage_count(order: int) -> int:
    """Number of switch columns in ``B(n)``: ``2n - 1``."""
    if order < 1:
        raise InvalidParameterError(f"order must be >= 1, got {order}")
    return 2 * order - 1


def switch_count(order: int) -> int:
    """Total binary switches in ``B(n)``: ``N log N - N/2``."""
    n_inputs = 1 << order
    return stage_count(order) * (n_inputs // 2)


def control_bit(stage: int, order: int) -> int:
    """Tag bit controlling the switches of ``stage`` (Fig. 3).

    Stage ``b`` and stage ``2n-2-b`` are both set from tag bit ``b``,
    so the controlling bit is ``min(stage, 2n-2-stage)``.
    """
    last = stage_count(order) - 1
    if not 0 <= stage <= last:
        raise InvalidParameterError(f"stage {stage} out of range 0..{last}")
    return min(stage, last - stage)


def unshuffle_link(order: int) -> Tuple[int, ...]:
    """The link permutation following the first column of ``B(n)``:
    row ``r`` wires to row ``rotate_right(r)`` (bit 0 becomes the
    sub-network selector, i.e. the new top bit)."""
    n_rows = 1 << order
    return tuple(rotate_right(r, order) for r in range(n_rows))


def shuffle_link(order: int) -> Tuple[int, ...]:
    """The link permutation preceding the last column of ``B(n)``:
    row ``r`` wires to row ``rotate_left(r)`` (the sub-network selector
    bit returns to position 0)."""
    n_rows = 1 << order
    return tuple(rotate_left(r, order) for r in range(n_rows))


def _nest_in_halves(link: Tuple[int, ...], n_rows: int) -> Tuple[int, ...]:
    """Lift a link of the ``B(n-1)`` sub-network so it acts independently
    inside the top and bottom halves of ``B(n)``'s row space."""
    half = n_rows // 2
    out = [0] * n_rows
    for r in range(half):
        out[r] = link[r]
        out[half + r] = half + link[r]
    return tuple(out)


@dataclass(frozen=True)
class BenesTopology:
    """The flattened structure of ``B(n)``.

    Attributes:
        order: the paper's ``n`` (``N = 2^n`` terminals).
        links: ``2n - 2`` row permutations; ``links[s][r]`` is the input
            row of column ``s+1`` fed by output row ``r`` of column ``s``.
    """

    order: int
    links: Tuple[Tuple[int, ...], ...]

    @classmethod
    def build(cls, order: int) -> "BenesTopology":
        """Construct the topology for ``B(order)`` by the paper's
        recursion."""
        if order < 1:
            raise InvalidParameterError(f"order must be >= 1, got {order}")
        return cls(order=order, links=tuple(cls._build_links(order)))

    @staticmethod
    def _build_links(order: int) -> List[Tuple[int, ...]]:
        if order == 1:
            return []
        n_rows = 1 << order
        inner = [
            _nest_in_halves(link, n_rows)
            for link in BenesTopology._build_links(order - 1)
        ]
        return [unshuffle_link(order)] + inner + [shuffle_link(order)]

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def n_terminals(self) -> int:
        """``N = 2^n`` inputs (and outputs)."""
        return 1 << self.order

    @property
    def n_stages(self) -> int:
        """``2n - 1`` switch columns."""
        return stage_count(self.order)

    @property
    def switches_per_stage(self) -> int:
        """``N / 2`` switches in every column."""
        return self.n_terminals // 2

    @property
    def n_switches(self) -> int:
        """``N log N - N/2`` switches in total."""
        return switch_count(self.order)

    def control_bit(self, stage: int) -> int:
        """Tag bit controlling ``stage`` — see :func:`control_bit`."""
        return control_bit(stage, self.order)

    def control_bits(self) -> Tuple[int, ...]:
        """The full per-stage control-bit schedule
        ``(0, 1, ..., n-1, ..., 1, 0)``."""
        return tuple(self.control_bit(s) for s in range(self.n_stages))

    def apply_link(self, stage: int, rows: list) -> list:
        """Wire a full row vector across the link that follows
        ``stage``: the value on output row ``r`` of column ``stage``
        appears on input row ``links[stage][r]`` of column ``stage+1``."""
        link = self.links[stage]
        out = [None] * len(rows)
        for r, value in enumerate(rows):
            out[link[r]] = value
        return out

    def validate(self) -> None:
        """Check structural invariants (used by tests):

        - there are exactly ``2n - 2`` links, each a permutation of rows;
        - the first link is the unshuffle and the last is the shuffle;
        - every link maps each half-specific structure consistently.
        """
        expected = self.n_stages - 1
        if len(self.links) != expected:
            raise AssertionError(
                f"expected {expected} links, found {len(self.links)}"
            )
        for s, link in enumerate(self.links):
            if sorted(link) != list(range(self.n_terminals)):
                raise AssertionError(f"link {s} is not a row permutation")
        if self.order >= 2:
            if self.links[0] != unshuffle_link(self.order):
                raise AssertionError("first link is not the unshuffle")
            if self.links[-1] != shuffle_link(self.order):
                raise AssertionError("last link is not the shuffle")
