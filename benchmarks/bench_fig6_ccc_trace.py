"""FIG6 — the CCC permutation algorithm performing bit reversal
(Fig. 6): the destination register of every PE after each of the
2 log N - 1 loop iterations.
"""

from conftest import emit

from repro.simd import CCC, permute_ccc
from repro.permclasses import bit_reversal
from repro.viz import render_ccc_trace


def test_fig6_trace(benchmark):
    perm = bit_reversal(3).to_permutation()

    def run():
        return permute_ccc(CCC(3), perm, trace=True)

    run_result = benchmark(run)
    assert run_result.success
    emit("FIG6: CCC algorithm, bit reversal, N = 8",
         render_ccc_trace(run_result, 3))

    history = run_result.tag_history
    # Fig. 6 spot checks quoted in the paper's text:
    # b = 0: exchange between PE(6) and PE(7) because (D(6))_0 = 1 ...
    assert history[1][6] == perm[7] and history[1][7] == perm[6]
    # ... no exchange between PE(0) and PE(1)
    assert history[1][0] == perm[0] and history[1][1] == perm[1]
    # b = 2: no exchange between PE(0) and PE(4) since (D(0))_2 = 0;
    assert history[3][0] == history[2][0]
    # an exchange between PE(1) and PE(5) since (D(1))_2 = 1
    assert history[3][1] == history[2][5]
    assert history[3][5] == history[2][1]
    # after the final iteration every PE holds its own index
    assert history[-1] == tuple(range(8))


def test_fig6_route_count(benchmark):
    perm = bit_reversal(3).to_permutation()
    run_result = benchmark(permute_ccc, CCC(3), perm)
    assert run_result.unit_routes == 5  # 2 log N - 1
