"""Shared benchmark fixtures."""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng():
    return random.Random(1980)


def emit(title: str, body: str) -> None:
    """Print a reproduced table/figure so `pytest benchmarks/ -s`
    shows the paper artifacts next to the timings."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
