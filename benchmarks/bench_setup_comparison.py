"""CLM-SETUP — self-routing vs external setup (Section I).

The paper's motivation: routing time through B(n) is O(log N), but
computing switch settings for an arbitrary permutation costs
O(N log N) serially (Waksman looping) — so the *setup dominates*.  The
self-routing scheme removes the setup entirely for class-F
permutations.

Measured here:
- wall-clock of Waksman setup alone vs full self-routed transit, across
  sizes (the setup grows ~N log N while a single tag decision is O(1)
  per switch — total transit work is the same order, but self-routing
  needs no serial precomputation and no extra memory pass);
- the operation-count view: setup touches all N log N - N/2 switches
  plus the looping traversal, self-routing decides each switch locally;
- external setup realizes permutations outside F.
"""

import pytest
from conftest import emit

from repro.accel import have_numpy
from repro.accel.setup import batch_setup_states
from repro.core import (
    BenesNetwork,
    in_class_f,
    random_permutation,
    setup_states,
)
from repro.permclasses import BPCSpec
from repro.simd import batch_parallel_setup, parallel_setup_states


@pytest.mark.parametrize("order", [4, 6, 8, 10])
def test_waksman_setup_cost(benchmark, order, rng):
    perm = random_permutation(1 << order, rng)
    states = benchmark(setup_states, perm)
    assert len(states) == 2 * order - 1


@pytest.mark.parametrize("order", [4, 6, 8, 10])
def test_self_routing_total_cost(benchmark, order, rng):
    net = BenesNetwork(order)
    perm = BPCSpec.random(order, rng).to_permutation()
    result = benchmark(net.route, perm)
    assert result.success


def test_external_setup_realizes_non_f(benchmark, rng):
    order = 6
    net = BenesNetwork(order)
    # find a random permutation outside F (overwhelmingly likely)
    perm = random_permutation(1 << order, rng)
    while in_class_f(perm):
        perm = random_permutation(1 << order, rng)

    def setup_and_route():
        return net.route_with_states(setup_states(perm)).realized

    realized = benchmark(setup_and_route)
    assert realized == perm


@pytest.mark.parametrize("order", [4, 6, 8])
def test_parallel_setup_cost(benchmark, order, rng):
    """The paper's §I comparison: even an N-PE parallel setup costs
    polylog broadcast steps per permutation; self-routing costs none."""
    perm = random_permutation(1 << order, rng)
    run = benchmark(parallel_setup_states, perm)
    # O(log^2 N) broadcast steps, far below the serial O(N log N) work
    assert run.total_steps <= 2 * order * order + 8 * order
    net = BenesNetwork(order)
    assert net.route_with_states(run.states).realized == perm


@pytest.mark.parametrize("order", [4, 6, 8])
def test_batch_setup_cost(benchmark, order, rng):
    """The vectorized batched looping (repro.accel.setup): amortizes
    the serial O(N log N) setup across a whole batch of permutations —
    per-item cost drops by an order of magnitude when NumPy drives."""
    batch = 64
    perms = [random_permutation(1 << order, rng).as_tuple()
             for _ in range(batch)]
    batch_setup_states(order, perms[:2])  # warm plan caches
    states = benchmark(batch_setup_states, order, perms)
    assert len(states) == batch
    # spot-check parity with the serial looping algorithm
    want = setup_states(perms[0])
    assert [[int(v) for v in col] for col in states[0]] == want


def test_batch_parallel_setup_consistency(benchmark, rng):
    """The batched CIC comparison point: same states, same (data-
    independent) broadcast step counts as the scalar parallel model."""
    order, batch = 6, 32
    perms = [random_permutation(1 << order, rng).as_tuple()
             for _ in range(batch)]
    runs = benchmark.pedantic(batch_parallel_setup, args=(perms,),
                              rounds=3, iterations=1, warmup_rounds=1)
    reference = parallel_setup_states(perms[0])
    assert runs[0].states == reference.states
    assert runs[0].total_steps == reference.total_steps
    if not have_numpy():
        pytest.skip("NumPy absent: batched path is the scalar loop")


def test_setup_regimes_table(benchmark, rng):
    def table():
        rows = [f"{'n':>3} {'N':>6} {'serial ops ~NlogN':>18} "
                f"{'parallel steps':>15} {'self-routing':>13}"]
        for order in (4, 6, 8, 10):
            n = 1 << order
            perm = random_permutation(n, rng)
            run = parallel_setup_states(perm)
            rows.append(f"{order:>3} {n:>6} {n * order:>18} "
                        f"{run.total_steps:>15} {'0 (in-flight)':>13}")
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("CLM-SETUP: setup regimes "
         "(serial Waksman vs N-PE parallel looping vs self-routing)",
         body)


def test_setup_summary_table(benchmark, rng):
    import time

    def measure():
        rows = [f"{'n':>3} {'N':>6} {'waksman setup (ms)':>19} "
                f"{'self-routed transit (ms)':>25}"]
        for order in (4, 6, 8, 10):
            n = 1 << order
            net = BenesNetwork(order)
            arbitrary = random_permutation(n, rng)
            f_perm = BPCSpec.random(order, rng).to_permutation()
            t0 = time.perf_counter()
            setup_states(arbitrary)
            t_setup = (time.perf_counter() - t0) * 1e3
            t0 = time.perf_counter()
            net.route(f_perm)
            t_route = (time.perf_counter() - t0) * 1e3
            rows.append(f"{order:>3} {n:>6} {t_setup:>19.3f} "
                        f"{t_route:>25.3f}")
        return "\n".join(rows)

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("CLM-SETUP: serial setup vs self-routing "
         "(paper: O(N logN) setup dominates O(logN) transit; "
         "self-routing needs none)", table)
