"""ABL-SCALE — simulator scaling sweep and ``BENCH_scaling.json``.

Two roles in one file:

- **pytest benchmarks** (collected by the benchmark suite): one
  self-routed pass through B(12), Waksman setup at the same size, the
  SIMD routers at N = 1024, and a composed-engine setup cell — the
  quick in-process legs CI exercises on every run.
- **report producer** (``python benchmarks/bench_scaling.py``): the
  canonical sweep behind the committed ``BENCH_scaling.json``.  Every
  cell (serial Waksman / monolithic batch / composed-sharded) runs in
  a **fresh subprocess** so ``peak_rss_kb`` (``ru_maxrss``) is a true
  per-cell peak rather than the monotonic high-water mark of one long
  process; the report carries ``rss_isolated: true`` to say so.  The
  serial baseline is capped (default order 14) — the pure-Python
  recursion only proves the point more slowly beyond that — while
  batch and composed continue to the top order.

The committed report is guarded by
``tools/check_bench_regression.py``: composed must beat serial by the
acceptance floor at order >= 14, and composed peak RSS must stay
sub-linear in N (top order vs order 14).

Regenerate from the repository root::

    PYTHONPATH=src python benchmarks/bench_scaling.py \
        --orders 10,12,14,16,18 --output BENCH_scaling.json
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys

import pytest
from conftest import emit

from repro.accel import batch_self_route, have_numpy
from repro.core import BenesNetwork, random_class_f, setup_states
from repro.core import random_permutation
from repro.permclasses import BPCSpec
from repro.simd import CCC, PSC, permute_ccc, permute_psc


@pytest.mark.parametrize("order", [10, 12])
def test_structural_route_scaling(benchmark, order, rng):
    net = BenesNetwork(order)
    perm = random_class_f(order, rng)
    result = benchmark(net.route, perm)
    assert result.success


@pytest.mark.parametrize("order", [10, 12])
def test_waksman_scaling(benchmark, order, rng):
    perm = random_permutation(1 << order, rng)
    states = benchmark(setup_states, perm)
    assert len(states) == 2 * order - 1


@pytest.mark.parametrize("order", [10, 12])
def test_accel_batch_scaling(benchmark, order, rng):
    """Bulk leg of the sweep: 256 self-routed passes per call through
    the vectorized engine (falls back to the scalar loop sans NumPy)."""
    if not have_numpy():
        pytest.skip("NumPy absent: batch engine runs in fallback mode")
    n = 1 << order
    tags = [random_permutation(n, rng).as_tuple() for _ in range(256)]
    result = benchmark(batch_self_route, tags)
    assert result.batch_size == 256 and len(result.mappings[0]) == n


@pytest.mark.parametrize("order", [12])
def test_accel_composed_scaling(benchmark, order, rng):
    """Composed-engine leg: one universal setup through the
    block-composed path, with byte parity against the serial Waksman
    oracle asserted once outside the timed region."""
    from repro.accel import batch_setup_states

    perm = random_permutation(1 << order, rng).as_tuple()
    composed = batch_setup_states(order, [perm], engine="composed")[0]
    assert [[int(v) for v in col] for col in composed] == \
        setup_states(perm)
    result = benchmark(batch_setup_states, order, [perm],
                       engine="composed")
    assert len(result[0]) == 2 * order - 1


def test_simd_scaling(benchmark, rng):
    order = 10
    spec = BPCSpec.random(order, rng)
    perm = spec.to_permutation()

    def both():
        ccc = permute_ccc(CCC(order), perm)
        psc = permute_psc(PSC(order), perm)
        return ccc, psc

    ccc, psc = benchmark(both)
    assert ccc.success and psc.success
    assert ccc.unit_routes == 19 and psc.unit_routes == 37


def test_scaling_summary(benchmark, rng):
    import time

    def table():
        rows = [f"{'n':>3} {'N':>6} {'switches':>9} "
                f"{'route (ms)':>11} {'setup (ms)':>11}"]
        for order in (8, 10, 12):
            net = BenesNetwork(order)
            perm = random_class_f(order, rng)
            t0 = time.perf_counter()
            net.route(perm)
            t_route = (time.perf_counter() - t0) * 1e3
            t0 = time.perf_counter()
            setup_states(random_permutation(1 << order, rng))
            t_setup = (time.perf_counter() - t0) * 1e3
            rows.append(
                f"{order:>3} {1 << order:>6} {net.n_switches:>9} "
                f"{t_route:>11.1f} {t_setup:>11.1f}"
            )
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("ABL-SCALE: simulator scaling", body)


# ---------------------------------------------------------------------------
# BENCH_scaling.json producer (subprocess-isolated RSS)
# ---------------------------------------------------------------------------

def _run_cell_subprocess(mode: str, order: int, seed: int,
                         repeats: int) -> dict:
    """One scaling cell in a fresh interpreter: the child's
    ``ru_maxrss`` then *is* the cell's peak, untainted by sibling
    cells' allocations."""
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--cell", mode, "--order", str(order),
         "--seed", str(seed), "--repeats", str(repeats)],
        env=env, capture_output=True, text=True, check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"scaling cell {mode}/order {order} failed "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}")
    return json.loads(proc.stdout)


def _emit_cell(mode: str, order: int, seed: int, repeats: int) -> int:
    """Worker mode: measure one cell in this process and print it as
    JSON on stdout (the parent sweep collects it)."""
    from repro.accel.benchmark import measure_scaling_cell

    json.dump(measure_scaling_cell(order, mode, seed=seed,
                                   repeats=repeats), sys.stdout)
    return 0


def run_isolated_sweep(orders, *, seed: int = 2026, repeats: int = 2,
                       serial_max_order: int = 14) -> dict:
    """The full sweep with every cell in its own subprocess — same
    report schema as :func:`repro.accel.benchmark.run_scaling_benchmark`
    but with honest per-cell RSS (``rss_isolated: true``)."""
    from repro.accel.benchmark import (
        SCALING_MODES,
        _annotate_scaling_speedups,
    )

    cells = []
    for order in orders:
        for mode in SCALING_MODES:
            if mode == "serial" and order > serial_max_order:
                continue
            print(f"  measuring {mode:>9} at order {order} ...",
                  file=sys.stderr)
            cells.append(_run_cell_subprocess(mode, order, seed,
                                              repeats))
    _annotate_scaling_speedups(cells)
    return {
        "benchmark": "scaling: serial Waksman vs batch vs composed "
                     "universal setup",
        "numpy": have_numpy(),
        "cpu_count": os.cpu_count(),
        "seed": seed,
        "repeats": repeats,
        "serial_max_order": serial_max_order,
        "rss_isolated": True,
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="produce BENCH_scaling.json with "
                    "subprocess-isolated per-cell RSS")
    parser.add_argument("--orders", default="10,12,14,16,18",
                        help="comma-separated orders to sweep")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--serial-max-order", type=int, default=14,
                        help="highest order the serial baseline runs "
                             "at (default 14)")
    parser.add_argument("--output", default="BENCH_scaling.json",
                        help="report path ('-' for stdout)")
    parser.add_argument("--cell", choices=("serial", "batch",
                                           "composed"),
                        help="internal: measure one cell in this "
                             "process and print its JSON")
    parser.add_argument("--order", type=int,
                        help="internal: the --cell order")
    args = parser.parse_args(argv)

    if args.cell:
        if args.order is None:
            parser.error("--cell requires --order")
        return _emit_cell(args.cell, args.order, args.seed,
                          args.repeats)

    orders = tuple(int(tok) for tok in args.orders.split(",") if tok)
    report = run_isolated_sweep(orders, seed=args.seed,
                                repeats=args.repeats,
                                serial_max_order=args.serial_max_order)
    body = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output == "-":
        sys.stdout.write(body)
    else:
        pathlib.Path(args.output).write_text(body, encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    from repro.accel.benchmark import format_scaling_table
    print(format_scaling_table(report), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
