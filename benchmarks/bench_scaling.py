"""ABL-SCALE — simulator scaling sweep.

Not a paper claim, but an adoption requirement: the structural
simulator and the SIMD simulations stay usable at thousands of
terminals.  Measured: one self-routed pass through B(12) (4096 lines,
23 stages, 47104 switches), Waksman setup at the same size, and the
SIMD routers at N = 1024.
"""

import pytest
from conftest import emit

from repro.accel import batch_self_route, have_numpy
from repro.core import BenesNetwork, random_class_f, setup_states
from repro.core import random_permutation
from repro.permclasses import BPCSpec
from repro.simd import CCC, PSC, permute_ccc, permute_psc


@pytest.mark.parametrize("order", [10, 12])
def test_structural_route_scaling(benchmark, order, rng):
    net = BenesNetwork(order)
    perm = random_class_f(order, rng)
    result = benchmark(net.route, perm)
    assert result.success


@pytest.mark.parametrize("order", [10, 12])
def test_waksman_scaling(benchmark, order, rng):
    perm = random_permutation(1 << order, rng)
    states = benchmark(setup_states, perm)
    assert len(states) == 2 * order - 1


@pytest.mark.parametrize("order", [10, 12])
def test_accel_batch_scaling(benchmark, order, rng):
    """Bulk leg of the sweep: 256 self-routed passes per call through
    the vectorized engine (falls back to the scalar loop sans NumPy)."""
    if not have_numpy():
        pytest.skip("NumPy absent: batch engine runs in fallback mode")
    n = 1 << order
    tags = [random_permutation(n, rng).as_tuple() for _ in range(256)]
    result = benchmark(batch_self_route, tags)
    assert result.batch_size == 256 and len(result.mappings[0]) == n


def test_simd_scaling(benchmark, rng):
    order = 10
    spec = BPCSpec.random(order, rng)
    perm = spec.to_permutation()

    def both():
        ccc = permute_ccc(CCC(order), perm)
        psc = permute_psc(PSC(order), perm)
        return ccc, psc

    ccc, psc = benchmark(both)
    assert ccc.success and psc.success
    assert ccc.unit_routes == 19 and psc.unit_routes == 37


def test_scaling_summary(benchmark, rng):
    import time

    def table():
        rows = [f"{'n':>3} {'N':>6} {'switches':>9} "
                f"{'route (ms)':>11} {'setup (ms)':>11}"]
        for order in (8, 10, 12):
            net = BenesNetwork(order)
            perm = random_class_f(order, rng)
            t0 = time.perf_counter()
            net.route(perm)
            t_route = (time.perf_counter() - t0) * 1e3
            t0 = time.perf_counter()
            setup_states(random_permutation(1 << order, rng))
            t_setup = (time.perf_counter() - t0) * 1e3
            rows.append(
                f"{order:>3} {1 << order:>6} {net.n_switches:>9} "
                f"{t_route:>11.1f} {t_setup:>11.1f}"
            )
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("ABL-SCALE: simulator scaling", body)
