"""ABL-GCN — the generalized connection network built on B(n).

The paper's intro cites the Benes network's role as a GCN subnetwork.
Measured: the sort -> copy -> permute pipeline realizes arbitrary
mappings (broadcast, multicast, gather) with the cost
``sort + log N + Benes`` stages, and its final Benes pass self-routes
whenever the unsort permutation lands in class F.
"""

import pytest
from conftest import emit

from repro.networks import GeneralizedConnectionNetwork


@pytest.mark.parametrize("order", [3, 5, 7])
def test_gcn_broadcast(benchmark, order):
    gcn = GeneralizedConnectionNetwork(order)
    n = 1 << order
    sources = [0] * n  # full broadcast of input 0
    result = benchmark(gcn.connect, sources)
    assert result.outputs == (0,) * n


@pytest.mark.parametrize("order", [3, 5, 7])
def test_gcn_random_map(benchmark, order, rng):
    gcn = GeneralizedConnectionNetwork(order)
    n = 1 << order
    sources = [rng.randrange(n) for _ in range(n)]
    result = benchmark(gcn.connect, sources)
    assert result.outputs == tuple(sources)


def test_gcn_cost_table(benchmark):
    def table():
        rows = [f"{'n':>3} {'N':>6} {'cells':>7} {'delay':>6} "
                f"{'= sort + copy + benes':>22}"]
        for order in (3, 5, 7, 9):
            gcn = GeneralizedConnectionNetwork(order)
            sort_d = order * (order + 1) // 2
            rows.append(
                f"{order:>3} {1 << order:>6} {gcn.n_switches:>7} "
                f"{gcn.delay:>6} "
                f"{f'{sort_d} + {order} + {2 * order - 1}':>22}"
            )
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("ABL-GCN: generalized connection network costs", body)
