"""CLM-NETS — the Section I network comparison.

Regenerates the trade-off table the paper's introduction walks through:
switch counts, stage delays, realizable-permutation counts and setup
regimes for the Benes network (self-routing and external), the omega
network, the crossbar, Batcher's bitonic network, Lang-Stone, and the
NS[13] family — plus measured realizable *fractions* on random
permutations for the self-routing networks.
"""

import pytest
from conftest import emit

from repro.analysis import comparison_table
from repro.core import BenesNetwork, random_permutation
from repro.networks import BitonicNetwork, Crossbar, OmegaNetwork


def _fmt_cost_table(n_terminals):
    rows = [f"network costs at N = {n_terminals}:",
            f"{'network':<26} {'switches':>9} {'delay':>6} "
            f"{'realizable':>12}  setup"]
    for cost in comparison_table(n_terminals):
        realizable = (str(cost.realizable) if cost.realizable is not None
                      and cost.realizable < 10**9
                      else ("~10^%d" % len(str(cost.realizable))
                            if cost.realizable else "|F(n)|"))
        rows.append(f"{cost.name:<26} {cost.switches:>9} "
                    f"{cost.delay:>6} {realizable:>12}  {cost.setup}")
    return "\n".join(rows)


def test_cost_table(benchmark):
    table = benchmark(_fmt_cost_table, 64)
    emit("CLM-NETS: Section I comparison", table)
    costs = {c.name: c for c in comparison_table(64)}
    benes = costs["Benes (self-routing)"]
    omega = costs["Omega (self-routing)"]
    batcher = costs["Batcher bitonic"]
    odd_even = costs["Batcher odd-even merge"]
    xbar = costs["Crossbar"]
    # the paper's ordering claims
    assert omega.switches < benes.switches <= 2 * omega.switches
    assert benes.delay == 2 * omega.delay - 1
    assert batcher.switches > benes.switches
    assert batcher.delay > benes.delay
    assert xbar.switches > batcher.switches
    # the cheaper Batcher variant is still costlier than the Benes
    assert benes.switches < odd_even.switches < batcher.switches


@pytest.mark.parametrize("order", [3, 4, 5])
def test_realizable_fraction_shape(benchmark, order, rng):
    """Benes self-routing realizes strictly more random permutations
    than the omega network at every size (|F| >> |Omega|), while
    Batcher and crossbar realize everything."""
    n = 1 << order
    benes, omega = BenesNetwork(order), OmegaNetwork(order)
    batcher, xbar = BitonicNetwork(order), Crossbar(order)
    samples = [random_permutation(n, rng) for _ in range(300)]

    def census():
        wins = {"benes": 0, "omega": 0, "batcher": 0, "crossbar": 0}
        for p in samples:
            wins["benes"] += benes.route(p).success
            wins["omega"] += omega.route(p).success
            wins["batcher"] += batcher.route(p).success
            wins["crossbar"] += xbar.route(p).success
        return wins

    wins = benchmark.pedantic(census, rounds=1, iterations=1)
    emit(f"CLM-NETS: realizable counts over 300 random permutations, "
         f"N = {n}", str(wins))
    assert wins["benes"] >= wins["omega"]
    assert wins["batcher"] == wins["crossbar"] == len(samples)


def test_routing_latency_by_network(benchmark, rng):
    """Delay comparison on an identity route: omega (log N) < benes
    (2 log N - 1) < batcher (logN(logN+1)/2) stages."""
    order = 6
    nets = {
        "omega": OmegaNetwork(order),
        "benes": BenesNetwork(order),
        "batcher": BitonicNetwork(order),
        "crossbar": Crossbar(order),
    }

    def delays():
        return {name: net.delay for name, net in nets.items()}

    d = benchmark(delays)
    assert d["omega"] < d["benes"] < d["batcher"]
    assert d["crossbar"] == 1
