"""ABL-DUAL — ablation of the Section IV dual-network proposal.

The paper proposes an SIMD machine with both a direct PE network E(n)
and the attached self-routing B(n), arguing F(n) permutations go much
faster through B(n) because every E(n) routing step pays an instruction
broadcast.  This ablation sweeps the instruction-overhead factor and
shows where each network wins.
"""

import pytest
from conftest import emit

from repro.core import random_class_f, random_permutation, in_class_f
from repro.simd import DualNetworkComputer


@pytest.mark.parametrize("overhead", [1, 5, 20])
def test_dual_dispatch(benchmark, overhead, rng):
    order = 5
    machine = DualNetworkComputer(order, step_gate_cost=overhead)
    perm = random_class_f(order, rng)
    report = benchmark(machine.permute, perm)
    # 4 log N - 3 PSC routes x overhead vs 2 log N - 1 gate delays:
    # even at overhead 1 the attached network wins for n > 1
    assert report.chosen == "benes"
    assert report.gate_delays == 2 * order - 1


def test_dual_crossover_table(benchmark, rng):
    def table():
        rows = [f"{'overhead':>9} {'class':>8} {'benes':>7} "
                f"{'e-net':>7} {'chosen':>10}"]
        order = 5
        f_perm = random_class_f(order, rng)
        non_f = random_permutation(1 << order, rng)
        while in_class_f(non_f):
            non_f = random_permutation(1 << order, rng)
        for overhead in (1, 5, 20):
            machine = DualNetworkComputer(order,
                                          step_gate_cost=overhead)
            for label, perm in (("F", f_perm), ("non-F", non_f)):
                b, e, _ = machine.estimate_costs(perm)
                report = machine.permute(perm)
                rows.append(
                    f"{overhead:>9} {label:>8} "
                    f"{b if b is not None else '-':>7} {e:>7} "
                    f"{report.chosen:>10}"
                )
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("ABL-DUAL: dual-network dispatch vs instruction overhead "
         "(gate delays; paper: 'much less time ... through B(n)')",
         body)


def test_dual_speedup_grows_with_overhead(benchmark, rng):
    order = 6
    perm = random_class_f(order, rng)

    def speedups():
        out = []
        for overhead in (1, 5, 20, 100):
            machine = DualNetworkComputer(order,
                                          step_gate_cost=overhead)
            b, e, _ = machine.estimate_costs(perm)
            out.append(e / b)
        return out

    ratios = benchmark(speedups)
    assert ratios == sorted(ratios)
    assert ratios[-1] > 100  # overhead 100: ~(4n-3)*100 / (2n-1)
