"""SETUP-BATCH — vectorized universal setup vs the scalar looping.

Not a paper claim: the perf budget that makes all-``N!`` workloads
(census-style sweeps, two-pass factorization of arbitrary permutation
streams) scale like the class-F fast path.  Sweeps orders x batch
sizes and records items/second for the serial Waksman looping
(``repro.core.waksman.setup_states`` per instance) versus the batched
level-by-level engine (``repro.accel.setup``), with and without the
shard executor.

Run as a script to (re)generate the machine-readable perf trajectory::

    PYTHONPATH=src python benchmarks/bench_setup_batch.py \
        --json BENCH_setup.json

or under pytest (``pytest benchmarks -k setup_batch``) for the smoke
assertions: parity of the timed workload and — when NumPy is present —
the >= 10x acceptance floor at order 8, batch 256 (single process).
The executor's >= 2x floor is asserted only on machines with >= 4
cores and a batch above the shard threshold.
"""

from __future__ import annotations

import argparse
import os
import random

import pytest
from conftest import emit

from repro.accel import have_numpy
from repro.accel.benchmark import (
    best_setup_speedup,
    format_setup_table,
    run_setup_benchmark,
    write_json,
)
from repro.accel.setup import (
    batch_setup_states,
    batch_two_pass,
    scalar_setup_loop,
    scalar_two_pass_loop,
)
from repro.core import random_permutation

SMOKE_ORDERS = (4, 8)
SMOKE_BATCHES = (64, 256)


def test_setup_parity_on_bench_workload(rng):
    """The exact workload the timings run must agree with the scalar
    looping algorithm (guards against benchmarking a broken kernel)."""
    for order in SMOKE_ORDERS:
        n = 1 << order
        perms = [random_permutation(n, rng).as_tuple()
                 for _ in range(16)]
        states = batch_setup_states(order, perms)
        expected = scalar_setup_loop(order, perms)
        for got, want in zip(states, expected):
            assert [[int(v) for v in col] for col in got] == want
        first, second = batch_two_pass(order, perms)
        want_first, want_second = scalar_two_pass_loop(order, perms)
        for i in range(len(perms)):
            assert tuple(int(v) for v in first[i]) == want_first[i]
            assert tuple(int(v) for v in second[i]) == want_second[i]


def test_setup_speedup_smoke():
    """One reduced sweep; assert the acceptance floor when vectorized."""
    report = run_setup_benchmark(orders=SMOKE_ORDERS,
                                 batch_sizes=SMOKE_BATCHES, repeats=2,
                                 include_parallel=False)
    emit("SETUP-BATCH: batched universal setup vs scalar looping",
         format_setup_table(report))
    assert len(report["cells"]) == \
        2 * len(SMOKE_ORDERS) * len(SMOKE_BATCHES)
    if not have_numpy():
        pytest.skip("NumPy absent: fallback mode, no speedup expected")
    for kind in ("setup", "two_pass"):
        floor = best_setup_speedup(report, kind=kind, min_order=8,
                                   min_batch=256)
        assert floor is not None and floor >= 10.0, (
            f"batched {kind} only {floor:.1f}x over scalar at order 8 "
            "(acceptance floor is 10x)"
        )


def test_executor_speedup_multicore():
    """Shard-executor acceptance: >= 2x over the single-process batch
    on machines with >= 4 cores (conditional — meaningless on 1-2
    cores, where the executor rightly stays inline)."""
    cores = os.cpu_count() or 1
    if not have_numpy():
        pytest.skip("NumPy absent")
    if cores < 4:
        pytest.skip(f"only {cores} core(s); executor floor needs >= 4")
    import time

    from repro.accel import executor as _executor

    order, batch = 8, max(4096, _executor.SHARD_THRESHOLD)
    rng = random.Random(1968)
    perms = [random_permutation(1 << order, rng).as_tuple()
             for _ in range(batch)]
    batch_setup_states(order, perms[:2], parallel=True)  # warm pool
    t0 = time.perf_counter()
    inline = batch_setup_states(order, perms)
    t_inline = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = batch_setup_states(order, perms, parallel=True)
    t_sharded = time.perf_counter() - t0
    import numpy as np

    assert np.array_equal(inline, sharded)
    assert t_inline / t_sharded >= 2.0, (
        f"executor only {t_inline / t_sharded:.2f}x on {cores} cores"
    )


def test_setup_throughput_order8(benchmark):
    """pytest-benchmark hook on the headline cell (order 8, batch 256)."""
    if not have_numpy():
        pytest.skip("NumPy absent")
    rng = random.Random(1968)
    n = 1 << 8
    perms = [random_permutation(n, rng).as_tuple() for _ in range(256)]
    batch_setup_states(8, perms[:2])  # warm plan caches
    states = benchmark(batch_setup_states, 8, perms)
    assert states.shape == (256, 15, 128)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the batched universal setup against "
                    "the scalar looping algorithm"
    )
    parser.add_argument("--orders", default="3,4,5,6,7,8",
                        help="comma-separated network orders")
    parser.add_argument("--batches", default="64,256",
                        help="comma-separated batch sizes")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1968)
    parser.add_argument("--no-parallel", action="store_true",
                        help="skip the shard-executor cells")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable report here "
                             "(e.g. BENCH_setup.json)")
    parser.add_argument("--profile", action="store_true",
                        help="collect metrics during the sweep and "
                             "embed the snapshot in the report")
    args = parser.parse_args(argv)
    if args.profile:
        from repro import obs
        obs.enable()
    report = run_setup_benchmark(
        orders=[int(t) for t in args.orders.split(",")],
        batch_sizes=[int(t) for t in args.batches.split(",")],
        seed=args.seed, repeats=args.repeats,
        include_parallel=not args.no_parallel,
    )
    print(format_setup_table(report))
    if args.json:
        write_json(report, args.json)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
