"""ABL-FAULT — fault masking in the self-routing network.

A property of the control scheme the paper does not discuss but which
falls out of it: switches downstream of a fault re-derive their states
from the tags that actually arrive, so a stuck switch in the
*distribution* half (stages 0 .. n-2) is often masked, while a flipped
state in the last n stages (which write destination bits) always
misroutes.  This benchmark measures masking rates by stage.
"""

from conftest import emit

from repro.core import BenesNetwork, random_class_f


def _masking_rates(order, trials, rng):
    net = BenesNetwork(order)
    rates = []
    for stage in range(net.n_stages):
        masked = 0
        for _ in range(trials):
            perm = random_class_f(order, rng)
            healthy = net.route(perm, trace=True)
            flipped = 1 - int(healthy.stages[stage].states[0])
            faulty = net.route(perm,
                               stuck_switches={(stage, 0): flipped})
            masked += faulty.success
        rates.append(masked / trials)
    return rates


def test_fault_masking_by_stage(benchmark, rng):
    order, trials = 4, 60
    rates = benchmark.pedantic(
        _masking_rates, args=(order, trials, rng), rounds=1, iterations=1
    )
    body = "\n".join(
        f"stage {s}: masking rate {rate:5.2f}"
        f"{'   (distribution half)' if s < order - 1 else ''}"
        for s, rate in enumerate(rates)
    )
    emit("ABL-FAULT: probability a flipped switch state is masked "
         f"(B({order}), {trials} random F permutations per stage)",
         body)
    # shape: some masking in the first n-1 stages, none afterwards
    assert any(rate > 0 for rate in rates[: order - 1])
    assert all(rate == 0 for rate in rates[order - 1:])


def test_identity_tolerates_any_distribution_fault(benchmark):
    order = 5
    net = BenesNetwork(order)

    def sweep():
        outcomes = []
        for stage in range(order - 1):
            for index in (0, net.n_terminals // 2 - 1):
                result = net.route(list(range(1 << order)),
                                   stuck_switches={(stage, index): 1})
                outcomes.append(result.success)
        return outcomes

    outcomes = benchmark(sweep)
    assert all(outcomes)
