"""PACKET — throughput/latency vs offered load for the packet mode.

Not a Nassimi-Sahni claim: the dynamic workload class of "A Benes
Packet Network" (Huang & Walrand — PAPERS.md).  The time-stepped
simulator (:mod:`repro.packet.sim`) injects Bernoulli traffic at a
sweep of offered loads and measures the saturation curve: delivered
throughput, drop rate, and end-to-end latency quantiles per load
point.

Invariants the committed report must keep (asserted read-only by
``tools/check_bench_regression.py``):

- at least ``3`` offered-load points (a curve, not a dot);
- ``misrouted == 0`` in every cell — self-routing delivers every
  packet that exits, under contention, backoff, and both steering
  policies;
- at the lowest committed load the network is **unsaturated**:
  delivered throughput must reach at least 90% of the offered load.

Under pytest (``pytest benchmarks -k packet``) the same invariants
run at reduced scale, plus determinism of the seeded simulation.

Run as a script to (re)generate the machine-readable report::

    PYTHONPATH=src python benchmarks/bench_packet.py \
        --json BENCH_packet.json
"""

from __future__ import annotations

import argparse
import json
import os
import time

import pytest
from conftest import emit

from repro.accel import have_numpy
from repro.packet import PacketSimConfig, saturation_sweep, simulate

DEFAULT_ORDER = 5
DEFAULT_TICKS = 512
DEFAULT_LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)
DEFAULT_QUEUE = 4
DEFAULT_SEED = 1980


# ----------------------------------------------------------------------
# pytest smoke legs — reduced-scale invariants
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", ["dest", "random"])
def test_packet_sweep_invariants(policy):
    reports = saturation_sweep(
        (0.1, 0.5, 0.9), order=4, ticks=96, seed=DEFAULT_SEED,
        policy=policy)
    for report in reports:
        assert report.misrouted == 0
        assert report.delivered + report.dropped + \
            report.stranded == report.offered
        for latency in report.latencies:
            assert latency >= 2 * report.config.order - 1
    # unsaturated at the lowest load: nearly everything delivered
    low = reports[0]
    assert low.throughput >= 0.9 * low.config.offered_load


def test_packet_sim_deterministic():
    config = PacketSimConfig(order=4, ticks=64, offered_load=0.6,
                             seed=7)
    assert simulate(config).to_dict() == simulate(config).to_dict()


def test_packet_throughput_bench(benchmark):
    config = PacketSimConfig(order=4, ticks=64, offered_load=0.5,
                             seed=DEFAULT_SEED)
    report = benchmark(simulate, config)
    assert report.misrouted == 0


# ----------------------------------------------------------------------
# report producer — the committed BENCH_packet.json
# ----------------------------------------------------------------------

def _cell(report) -> dict:
    cell = report.to_dict()
    cell["kind"] = "packet"
    cell["engine"] = "sim"
    # the guard keys on speedup for engine cells; packet cells have no
    # scalar baseline to normalize against
    cell["speedup"] = None
    cell["batch_size"] = None
    cell["parallel"] = False
    return cell


def build_report(order: int, loads, ticks: int, queue_capacity: int,
                 policies, seed: int) -> dict:
    cells = []
    t0 = time.perf_counter()
    for policy in policies:
        for report in saturation_sweep(
                loads, order=order, ticks=ticks,
                queue_capacity=queue_capacity, policy=policy,
                seed=seed):
            cells.append(_cell(report))
    return {
        "benchmark": "packet",
        "numpy": have_numpy(),
        "cpu_count": os.cpu_count(),
        "order": order,
        "ticks": ticks,
        "queue_capacity": queue_capacity,
        "seed": seed,
        "elapsed_s": round(time.perf_counter() - t0, 3),
        "cells": cells,
    }


def _render(report: dict) -> str:
    lines = [f"{'policy':>7} {'load':>6} {'thru':>8} {'drop%':>7} "
             f"{'p50':>5} {'p99':>5}"]
    for cell in report["cells"]:
        lines.append(
            f"{cell['policy']:>7} {cell['offered_load']:>6.2f} "
            f"{cell['throughput']:>8.4f} "
            f"{100 * cell['drop_rate']:>6.2f}% "
            f"{cell['latency_p50'] if cell['latency_p50'] is not None else '-':>5} "
            f"{cell['latency_p99'] if cell['latency_p99'] is not None else '-':>5}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="packet-mode saturation sweep")
    parser.add_argument("--order", type=int, default=DEFAULT_ORDER)
    parser.add_argument("--ticks", type=int, default=DEFAULT_TICKS)
    parser.add_argument("--loads",
                        default=",".join(str(v) for v in DEFAULT_LOADS))
    parser.add_argument("--queue-capacity", type=int,
                        default=DEFAULT_QUEUE)
    parser.add_argument("--policies", default="dest,random")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable report "
                             "(e.g. BENCH_packet.json)")
    args = parser.parse_args(argv)

    loads = [float(tok) for tok in
             args.loads.replace(" ", "").split(",")]
    policies = args.policies.replace(" ", "").split(",")
    report = build_report(args.order, loads, args.ticks,
                          args.queue_capacity, policies, args.seed)
    emit(f"PACKET saturation sweep (N={1 << args.order}, "
         f"ticks={args.ticks})", _render(report))
    bad = [cell for cell in report["cells"] if cell["misrouted"]]
    if bad:
        print(f"FAIL: {len(bad)} cell(s) with misrouted packets")
        return 1
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
