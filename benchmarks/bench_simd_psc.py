"""CLM-PSC — the Section III perfect-shuffle-computer results.

Measured claims:
- any F(n) permutation in exactly 4 log N - 3 unit-routes
  (exchange/unshuffle in, middle exchange, shuffle/exchange out);
- Omega permutations with the first loop replaced by a single shuffle
  (2 log N unit-routes);
- InverseOmega permutations with the second loop replaced by a single
  unshuffle.
"""

import pytest
from conftest import emit

from repro.permclasses import BPCSpec, cyclic_shift
from repro.simd import PSC, permute_psc


@pytest.mark.parametrize("order", [4, 6, 8, 10])
def test_psc_routes_general_f(benchmark, order, rng):
    perm = BPCSpec.random(order, rng).to_permutation()
    run = benchmark(permute_psc, PSC(order), perm)
    assert run.success
    assert run.unit_routes == 4 * order - 3


@pytest.mark.parametrize("order", [4, 6, 8])
def test_psc_omega_shortcut(benchmark, order):
    perm = cyclic_shift(order, 5)
    run = benchmark(permute_psc, PSC(order), perm, None, True)
    assert run.success
    assert run.unit_routes == 2 * order  # shuffle + n exchanges + n-1 shuffles


@pytest.mark.parametrize("order", [4, 6, 8])
def test_psc_inverse_omega_shortcut(benchmark, order):
    perm = cyclic_shift(order, 5)
    run = benchmark(permute_psc, PSC(order), perm, None, False, True)
    assert run.success
    assert run.unit_routes == 2 * order


def test_psc_route_count_table(benchmark, rng):
    def table():
        rows = [f"{'n':>3} {'N':>6} {'4logN-3':>8} {'measured':>9}"]
        for order in (3, 5, 7, 9):
            run = permute_psc(
                PSC(order), BPCSpec.random(order, rng).to_permutation()
            )
            assert run.success
            rows.append(f"{order:>3} {1 << order:>6} "
                        f"{4 * order - 3:>8} {run.unit_routes:>9}")
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("CLM-PSC: unit-routes on an N-PE PSC", body)
