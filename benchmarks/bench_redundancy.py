"""ABL-REDUN — setting redundancy / counted rearrangeability.

The Benes network's rearrangeability (all N! permutations realizable)
is usually proved; here it is *counted*: enumerating every one of the
``2^{N logN - N/2}`` switch settings shows each permutation realized by
at least one (in fact many) settings.  The multiplicity spread is the
slack the looping algorithm's free choices and the self-routing
scheme's canonical settings both live in.
"""

from conftest import emit

from repro.analysis.redundancy import setting_multiplicity, total_settings


def test_counted_rearrangeability_n2(benchmark):
    counts = benchmark(setting_multiplicity, 2)
    assert len(counts) == 24
    assert sum(counts.values()) == total_settings(2) == 64
    assert min(counts.values()) == 2
    assert max(counts.values()) == 4


def test_counted_rearrangeability_n3(benchmark):
    counts = benchmark.pedantic(
        setting_multiplicity, args=(3,), kwargs={"limit_order": 3},
        rounds=1, iterations=1,
    )
    assert len(counts) == 40320          # every permutation of 8
    assert sum(counts.values()) == total_settings(3) == 1 << 20
    emit("ABL-REDUN: B(3) setting redundancy",
         f"settings: 2^20 = {1 << 20}\n"
         f"distinct permutations realized: {len(counts)} = 8!\n"
         f"multiplicity: min {min(counts.values())}, "
         f"max {max(counts.values())}, "
         f"mean {(1 << 20) / len(counts):.1f}")
    assert min(counts.values()) == 8
    assert max(counts.values()) == 256
