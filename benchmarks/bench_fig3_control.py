"""FIG3 — the stage <-> destination-tag-bit control scheme (Fig. 3).

'The state of a switch in stage b or stage 2n-2-b, 0 <= b <= n-1, is
determined by bit b of the destination tag of its upper input.'
"""

from conftest import emit

from repro.core import BenesNetwork, random_permutation
from repro.core.topology import BenesTopology


def _schedule_table() -> str:
    rows = ["order   per-stage control bits (palindrome)"]
    for order in range(1, 8):
        bits = BenesTopology.build(order).control_bits()
        rows.append(f"{order:>5}   {bits}")
    return "\n".join(rows)


def test_fig3_control_bit_schedule(benchmark):
    table = benchmark(_schedule_table)
    emit("FIG3: control-bit schedule", table)
    for order in range(1, 8):
        bits = BenesTopology.build(order).control_bits()
        assert bits == tuple(
            min(s, 2 * order - 2 - s) for s in range(2 * order - 1)
        )


def test_fig3_rule_holds_during_routing(benchmark, rng):
    # Route random F permutations and check every recorded switch state
    # equals the claimed tag bit of its upper input.
    net = BenesNetwork(4)
    from repro.permclasses import BPCSpec

    perms = [BPCSpec.random(4, rng).to_permutation() for _ in range(10)]

    def route_all():
        return [net.route(p, trace=True) for p in perms]

    results = benchmark(route_all)
    for result in results:
        for st in result.stages:
            for i, state in enumerate(st.states):
                upper_tag = st.input_tags[2 * i]
                assert int(state) == (upper_tag >> st.control_bit) & 1
