"""ACCEL — batch-routing engines vs the scalar fast path.

Not a paper claim: the perf budget that makes the ROADMAP's bulk
workloads (Monte-Carlo F(n) density, cardinality sweeps, membership
sampling) tractable at production scale.  Sweeps batch sizes x orders
and records items/second for ``fast_self_route`` versus
``repro.accel.batch_self_route`` under each engine (NumPy vectorized
and the bit-sliced big-int kernel; ``--engine`` pins one).

Run as a script to (re)generate the machine-readable perf trajectory::

    PYTHONPATH=src python benchmarks/bench_accel.py --json BENCH_accel.json

or under pytest (``pytest benchmarks -k accel``) for the smoke
assertions: parity of the timed workload, the >= 10x acceptance floor
at order 8, batch 256 when NumPy is present, and the >= 5x bitslice
floor at the same cell with or without NumPy.
"""

from __future__ import annotations

import argparse
import random

import pytest
from conftest import emit

from repro.accel import batch_self_route, have_numpy
from repro.accel.benchmark import (
    best_speedup,
    format_table,
    measure_cell,
    run_benchmark,
    write_json,
)
from repro.core import random_permutation
from repro.core.fastpath import fast_self_route

SMOKE_ORDERS = (4, 8)
SMOKE_BATCHES = (64, 256)


def test_accel_parity_on_bench_workload(rng):
    """The exact workload the timings route must agree with the scalar
    path (guards against benchmarking a broken kernel)."""
    for order in SMOKE_ORDERS:
        n = 1 << order
        tags = [random_permutation(n, rng).as_tuple() for _ in range(32)]
        result = batch_self_route(tags)
        success, delivered = result.success_mask, result.mappings
        for i, row in enumerate(tags):
            ok, dst = fast_self_route(row)
            assert bool(success[i]) == ok
            assert tuple(int(v) for v in delivered[i]) == dst


def test_accel_speedup_smoke():
    """One reduced sweep; assert the acceptance floor when vectorized."""
    report = run_benchmark(orders=SMOKE_ORDERS,
                           batch_sizes=SMOKE_BATCHES, repeats=2)
    emit("ACCEL: batch engines vs scalar fast path",
         format_table(report))
    # the auto sweep appends bitslice cells wherever auto resolved to
    # another engine, so the grid is a lower bound, not an exact count
    assert len(report["cells"]) >= len(SMOKE_ORDERS) * len(SMOKE_BATCHES)
    assert all("engine" in cell for cell in report["cells"])
    if not have_numpy():
        pytest.skip("NumPy absent: no vectorized cells to gate")
    floor = best_speedup(report, min_order=8, min_batch=256,
                         engine="numpy")
    assert floor is not None and floor >= 10.0, (
        f"vectorized engine only {floor:.1f}x over scalar at order 8 "
        "(acceptance floor is 10x)"
    )


def test_bitslice_speedup_smoke():
    """The bit-sliced big-int engine must beat the scalar loop >= 5x at
    the headline cell (order 8, batch 256) — the no-NumPy fast-path
    acceptance floor, asserted with or without NumPy installed."""
    rng = random.Random(1980)
    cell = measure_cell(8, 256, rng, repeats=2, engine="bitslice")
    emit("ACCEL: bitslice engine headline cell",
         f"order 8 batch 256: {cell['speedup']:.1f}x over scalar")
    assert cell["engine"] == "bitslice"
    assert cell["speedup"] >= 5.0, (
        f"bitslice engine only {cell['speedup']:.1f}x over scalar at "
        "order 8, batch 256 (acceptance floor is 5x)"
    )


def test_accel_throughput_order8(benchmark):
    """pytest-benchmark hook on the headline cell (order 8, batch 256)."""
    if not have_numpy():
        pytest.skip("NumPy absent")
    rng = random.Random(1980)
    n = 1 << 8
    tags = [random_permutation(n, rng).as_tuple() for _ in range(256)]
    result = benchmark(batch_self_route, tags)
    assert result.batch_size == 256


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark repro.accel against the scalar fast path"
    )
    parser.add_argument("--orders", default="4,6,8",
                        help="comma-separated network orders")
    parser.add_argument("--batches", default="64,256,1024",
                        help="comma-separated batch sizes")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1980)
    parser.add_argument("--engine", default="auto",
                        choices=("scalar", "numpy", "bitslice", "auto"),
                        help="pin every cell to one engine; auto "
                             "resolves per cell and also times the "
                             "bitslice column")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable report here "
                             "(e.g. BENCH_accel.json)")
    parser.add_argument("--profile", action="store_true",
                        help="collect metrics during the sweep and "
                             "embed the snapshot in the report")
    args = parser.parse_args(argv)
    if args.profile:
        from repro import obs
        obs.enable()
    report = run_benchmark(
        orders=[int(t) for t in args.orders.split(",")],
        batch_sizes=[int(t) for t in args.batches.split(",")],
        seed=args.seed, repeats=args.repeats, engine=args.engine,
    )
    print(format_table(report))
    if args.json:
        write_json(report, args.json)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
