"""CLM-MCC — the Section III mesh-connected-computer result.

Measured claim: any F(n) permutation on a sqrt(N) x sqrt(N) MCC in
exactly ``7 sqrt(N) - 8`` unit-routes (each dimension-b interchange
costs 2^{k+1} unit-routes at mesh distance 2^k).
"""

import pytest
from conftest import emit

from repro.permclasses import BPCSpec, matrix_transpose
from repro.simd import MCC, permute_mcc


@pytest.mark.parametrize("side_order", [1, 2, 3, 4])
def test_mcc_routes_general_f(benchmark, side_order, rng):
    order = 2 * side_order
    perm = BPCSpec.random(order, rng).to_permutation()
    run = benchmark(permute_mcc, MCC(side_order), perm)
    assert run.success
    assert run.unit_routes == 7 * (1 << side_order) - 8


def test_mcc_transpose_with_skip(benchmark):
    side_order = 3
    spec = matrix_transpose(2 * side_order)
    run = benchmark(permute_mcc, MCC(side_order),
                    spec.to_permutation(), None, spec)
    assert run.success
    # transpose moves every bit: nothing skipped, full 7 sqrt(N) - 8
    assert run.unit_routes == 7 * (1 << side_order) - 8


def test_mcc_route_count_table(benchmark, rng):
    def table():
        rows = [f"{'q':>3} {'N':>6} {'sqrt(N)':>8} {'7sqrtN-8':>9} "
                f"{'measured':>9}"]
        for q in (1, 2, 3, 4):
            order = 2 * q
            run = permute_mcc(
                MCC(q), BPCSpec.random(order, rng).to_permutation()
            )
            assert run.success
            rows.append(f"{q:>3} {1 << order:>6} {1 << q:>8} "
                        f"{7 * (1 << q) - 8:>9} {run.unit_routes:>9}")
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("CLM-MCC: unit-routes on a sqrt(N) x sqrt(N) MCC", body)


def test_mcc_interchange_cost_geometry(benchmark):
    # the cost model underlying the 7 sqrt(N) - 8 bound
    machine = MCC(3)

    def interchange_costs():
        costs = []
        for dim in range(machine.dimensions):
            machine.set_register("R", list(range(machine.n_pes)))
            before = machine.stats.unit_routes
            machine.interchange(("R",), dim)
            costs.append(machine.stats.unit_routes - before)
        return costs

    costs = benchmark(interchange_costs)
    # dims 0..2 horizontal at distances 1,2,4; dims 3..5 vertical same
    assert costs == [2, 4, 8, 2, 4, 8]
