"""CLM-RICH — quantifying Section II's "rich class of permutations".

Regenerates:
- the exact census at n = 2, 3 (F vs BPC vs Omega vs InverseOmega),
  witnessing Theorems 2 and 3 and the Fig. 5 gap;
- sampled F-density at larger n;
- Theorem 4/5/6 composite constructions landing in F;
- the product counterexample.
"""

from conftest import emit

from repro.analysis import (
    bpc_count,
    class_census,
    estimate_class_f_density,
)
from repro.core import (
    Permutation,
    enumerate_class_f,
    in_class_f,
)
from repro.permclasses import (
    JPartition,
    blocks_and_within,
    hierarchical,
    within_blocks,
)


def test_census(benchmark):
    census2 = class_census(2)
    census3 = benchmark.pedantic(class_census, args=(3,), rounds=1,
                                 iterations=1)
    body = []
    for c in (census2, census3):
        body.append(
            f"n={c.order}: N!={c.total}  |F|={c.in_f}  "
            f"|BPC|={c.in_bpc}  |Omega|={c.in_omega}  "
            f"|InvOmega|={c.in_inverse_omega}  "
            f"Omega\\F={c.omega_not_f}  BPC\\F={c.bpc_not_f}  "
            f"InvOmega\\F={c.inverse_omega_not_f}"
        )
    emit("CLM-RICH: exact class census", "\n".join(body))
    for c in (census2, census3):
        assert c.bpc_not_f == 0            # Theorem 2
        assert c.inverse_omega_not_f == 0  # Theorem 3
        assert c.omega_not_f > 0           # Fig. 5 phenomenon
        assert c.in_f > c.in_omega         # F is the bigger class
    assert census2.in_f == 20
    assert census3.in_f == 11632


def test_density_estimates(benchmark, rng):
    def densities():
        return {
            order: estimate_class_f_density(order, 300, rng)
            for order in (3, 4, 5)
        }

    d = benchmark.pedantic(densities, rounds=1, iterations=1)
    emit("CLM-RICH: sampled |F(n)|/N!",
         "\n".join(f"n={k}: {v:.5f}" for k, v in d.items()))
    assert d[3] > d[4] >= d[5]  # density falls with n
    assert abs(d[3] - 11632 / 40320) < 0.12


def test_density_estimates_bulk(benchmark, rng):
    """A production-scale density sweep (10k samples at n = 6) — the
    workload the batched membership engine of :mod:`repro.accel` was
    built for; estimate_class_f_density routes it in (B, N) blocks."""
    density = benchmark.pedantic(
        estimate_class_f_density, args=(6, 10_000, rng),
        rounds=1, iterations=1,
    )
    emit("CLM-RICH: bulk sampled |F(6)|/64!",
         f"n=6: {density:.6f} (10000 samples, batched membership)")
    # F-density collapses with n: ~1.3e-2 at n=4; at n=6 a 10k-sample
    # estimate is overwhelmingly likely to sit far below 1e-2.
    assert 0.0 <= density < 0.01


def test_theorem_456_constructions(benchmark, rng):
    f2 = list(enumerate_class_f(2))
    f1 = list(enumerate_class_f(1))

    def build_composites():
        jp = JPartition(4, (1, 3))
        t4 = within_blocks(jp, [rng.choice(f2) for _ in range(4)])
        t5 = blocks_and_within(jp, rng.choice(f2),
                               [rng.choice(f2) for _ in range(4)])
        t6 = hierarchical(4, [(0, 2), (1,), (3,)],
                          [rng.choice(f2), rng.choice(f1),
                           rng.choice(f1)])
        return t4, t5, t6

    t4, t5, t6 = benchmark(build_composites)
    assert in_class_f(t4) and in_class_f(t5) and in_class_f(t6)
    emit("CLM-RICH: Theorem 4/5/6 composites",
         f"Theorem 4 sample: {t4.as_tuple()} -> in F\n"
         f"Theorem 5 sample: {t5.as_tuple()} -> in F\n"
         f"Theorem 6 sample: {t6.as_tuple()} -> in F")


def test_product_counterexample(benchmark):
    a = Permutation((3, 0, 1, 2))
    b = Permutation((0, 1, 3, 2))

    def check():
        product = a.then(b)
        return in_class_f(a), in_class_f(b), in_class_f(product), product

    a_in, b_in, prod_in, product = benchmark(check)
    assert a_in and b_in and not prod_in
    assert product == (2, 0, 1, 3)
    emit("CLM-RICH: F not closed under product",
         f"A = {a.as_tuple()} in F; B = {b.as_tuple()} in F; "
         f"A·B = {product.as_tuple()} NOT in F")
