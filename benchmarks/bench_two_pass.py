"""ABL-2PASS — two-pass universality.

Extension result: every permutation — including those outside F(n) —
is realized by two self-routed transits (one ordinary, one omega-mode)
with zero setup: ``D = omega_2 ∘ omega_1`` with ``omega_1`` inverse-
omega and ``omega_2`` omega.  Delay ``2 x (2 log N - 1)`` versus one
transit plus an O(N log N) serial setup.
"""

import pytest
from conftest import emit

from repro.accel.setup import batch_route_two_pass, batch_two_pass
from repro.core import BenesNetwork, random_permutation
from repro.core.twopass import route_two_pass, two_pass_decomposition
from repro.permclasses import is_inverse_omega, is_omega


@pytest.mark.parametrize("order", [4, 6, 8])
def test_two_pass_decomposition(benchmark, order, rng):
    perm = random_permutation(1 << order, rng)
    first, second = benchmark(two_pass_decomposition, perm)
    assert first.then(second) == perm
    assert is_inverse_omega(first)
    assert is_omega(second)


@pytest.mark.parametrize("order", [4, 6])
def test_two_pass_routing(benchmark, order, rng):
    net = BenesNetwork(order)
    perm = random_permutation(1 << order, rng)
    data = list(range(1 << order))
    routed = benchmark(route_two_pass, perm, data, net)
    assert routed == perm.apply(data)


@pytest.mark.parametrize("order", [4, 6, 8])
def test_batch_two_pass_decomposition(benchmark, order, rng):
    """The vectorized factorization (repro.accel.setup): a whole batch
    of arbitrary permutations split into (omega_1, omega_2) at once."""
    batch = 64
    perms = [random_permutation(1 << order, rng).as_tuple()
             for _ in range(batch)]
    batch_two_pass(order, perms[:2])  # warm plan caches
    first, second = benchmark(batch_two_pass, order, perms)
    want_first, want_second = two_pass_decomposition(perms[0])
    assert tuple(int(v) for v in first[0]) == want_first.as_tuple()
    assert tuple(int(v) for v in second[0]) == want_second.as_tuple()
    assert is_inverse_omega(tuple(int(v) for v in first[0]))
    assert is_omega(tuple(int(v) for v in second[0]))


def test_batch_two_pass_routing(benchmark, rng):
    """Factor + route both transits through the vectorized engine;
    every arbitrary permutation is delivered (universality)."""
    order, batch = 6, 64
    perms = [random_permutation(1 << order, rng).as_tuple()
             for _ in range(batch)]
    batch_route_two_pass(order, perms[:2])  # warm plan caches
    result = benchmark.pedantic(batch_route_two_pass,
                                args=(order, perms), rounds=3,
                                iterations=1, warmup_rounds=1)
    assert all(bool(ok) for ok in result.success_mask)
    for i, perm in enumerate(perms):
        delivered = [0] * len(perm)
        for output, source in enumerate(result.mappings[i]):
            delivered[int(source)] = output
        assert tuple(delivered) == perm


def test_two_pass_summary(benchmark, rng):
    def table():
        rows = [f"{'n':>3} {'N':>6} {'two-pass delay':>15} "
                f"{'one-pass + serial setup':>24}"]
        for order in (4, 6, 8, 10):
            n = 1 << order
            rows.append(
                f"{order:>3} {n:>6} "
                f"{2 * (2 * order - 1):>15} "
                f"{f'{2 * order - 1} + O({n * order})':>24}"
            )
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("ABL-2PASS: universal routing without setup "
         "(delay in stages; setup in serial operations)", body)
