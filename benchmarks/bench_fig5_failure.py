"""FIG5 — D = (1,3,2,0) is not self-routable on B(2) (Fig. 5).

Regenerates the failure trace and quantifies the phenomenon: the
permutation is in Omega(2) (the omega network and the omega-bit mode
both realize it) but outside F(2).
"""

from conftest import emit

from repro.core import BenesNetwork, Permutation, in_class_f
from repro.core.membership import first_failure
from repro.networks import OmegaNetwork
from repro.permclasses import is_omega
from repro.viz import render_route

FIG5 = Permutation((1, 3, 2, 0))


def test_fig5_failure_trace(benchmark):
    net = BenesNetwork(2)
    result = benchmark(net.route, FIG5, None, False, True)
    assert not result.success
    emit("FIG5: D = (1,3,2,0) under self-routing on B(2)",
         render_route(result, 2))
    # outputs 0 and 2 receive the wrong signals, as the figure shows
    assert set(result.misrouted) == {0, 2}


def test_fig5_classification(benchmark):
    def classify():
        return (
            in_class_f(FIG5),
            is_omega(FIG5),
            first_failure(FIG5),
            OmegaNetwork(2).route(FIG5).success,
            BenesNetwork(2).route(FIG5, omega_mode=True).success,
        )

    in_f, in_omega, conflict, omega_net_ok, omega_mode_ok = (
        benchmark(classify)
    )
    assert not in_f
    assert in_omega
    assert conflict is not None          # the Theorem 1 witness
    assert omega_net_ok                  # Lawrie's network handles it
    assert omega_mode_ok                 # ... and so does the omega bit
    emit("FIG5: classification",
         f"in F(2): {in_f}\nin Omega(2): {in_omega}\n"
         f"Theorem-1 conflict (derived sub-tags): {conflict}\n"
         f"omega network realizes it: {omega_net_ok}\n"
         f"omega-bit mode realizes it: {omega_mode_ok}")
