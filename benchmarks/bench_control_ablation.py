"""ABL-CTRL — ablation of the "upper input" control choice (Fig. 3).

The paper's rule reads bit b of the *upper* input's tag.  The mirror
rule (obey the lower input) yields an equally large but different
class: by the network's vertical symmetry, D is lower-routable iff
``i -> ~D(~i)`` is upper-routable.  Measured: identical class sizes at
every order tested; identical sets at n = 2 (F(2) happens to be
complement-invariant); 6528 membership flips at n = 3.
"""

from itertools import permutations

from conftest import emit

from repro.core import BenesNetwork, Permutation
from repro.core.membership import in_class_f


def test_control_ablation_census(benchmark):
    def census():
        upper = BenesNetwork(3)
        lower = BenesNetwork(3, control="lower")
        up_count = low_count = differ = 0
        for p in permutations(range(8)):
            a = upper.route(p).success
            b = lower.route(p).success
            up_count += a
            low_count += b
            differ += a != b
        return up_count, low_count, differ

    up_count, low_count, differ = benchmark.pedantic(
        census, rounds=1, iterations=1
    )
    emit("ABL-CTRL: upper vs lower input control at n = 3",
         f"|F_upper| = {up_count}\n|F_lower| = {low_count}\n"
         f"membership flips = {differ}")
    assert up_count == low_count == 11632
    assert differ == 6528


def test_control_mirror_identity(benchmark, rng):
    order = 4
    n = 1 << order
    lower = BenesNetwork(order, control="lower")

    def check():
        from repro.core import random_permutation
        hits = 0
        for _ in range(100):
            p = random_permutation(n, rng)
            conjugated = Permutation(
                (n - 1) ^ p[(n - 1) ^ i] for i in range(n)
            )
            assert lower.route(p).success == in_class_f(conjugated)
            hits += lower.route(p).success
        return hits

    benchmark.pedantic(check, rounds=1, iterations=1)
