"""CLM-PIPE — pipelined operation (Section IV).

Measured claims: with registers between stages the network accepts one
N-vector per clock (not necessarily under the same permutation); the
first permuted vector emerges after 2 log N - 1 clocks and each
subsequent one after unit delay.
"""

import pytest
from conftest import emit

from repro.core import PipelinedBenes
from repro.permclasses import BPCSpec, table_i_specs


@pytest.mark.parametrize("order", [3, 5, 7])
def test_pipeline_stream(benchmark, order, rng):
    vectors = [
        list(BPCSpec.random(order, rng).to_permutation())
        for _ in range(10)
    ]

    def stream():
        pipe = PipelinedBenes(order)
        return pipe.run(vectors)

    outs = benchmark(stream)
    assert all(o.result.success for o in outs)
    assert all(o.latency == 2 * order - 1 for o in outs)
    emerged = [o.emerged_at for o in outs]
    assert all(b - a == 1 for a, b in zip(emerged, emerged[1:]))


def test_pipeline_vs_serial_table(benchmark, rng):
    def table():
        rows = [f"{'n':>3} {'vectors':>8} {'latency':>8} "
                f"{'pipelined clocks':>17} {'serial clocks':>14} "
                f"{'speedup':>8}"]
        for order in (3, 5, 7):
            vectors = [
                list(spec.to_permutation())
                for _, spec in table_i_specs(order)
            ] * 3
            pipe = PipelinedBenes(order)
            outs = pipe.run(vectors)
            total = outs[-1].emerged_at
            serial = len(vectors) * (2 * order - 1)
            rows.append(
                f"{order:>3} {len(vectors):>8} {2 * order - 1:>8} "
                f"{total:>17} {serial:>14} {serial / total:>8.2f}"
            )
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("CLM-PIPE: pipelined throughput "
         "(paper: first vector after 2logN-1, then one per clock)",
         body)


def test_pipeline_mixed_permutations(benchmark, rng):
    """Back-to-back vectors under different permutations (the paper's
    'not necessarily according to the same permutation')."""
    order = 4
    specs = table_i_specs(order)
    vectors = [list(spec.to_permutation()) for _, spec in specs]

    def stream():
        return PipelinedBenes(order).run(vectors)

    outs = benchmark(stream)
    assert [tuple(o.result.requested) for o in outs] == [
        tuple(v) for v in vectors
    ]
    assert all(o.result.success for o in outs)
