"""TAB1 — Table I: example permutations in BPC(n).

Regenerates the table (name + A-vector) at several sizes, checks every
row's A-vector against an independent definition of the permutation,
and verifies Theorem 2 on each (membership in F)."""

from conftest import emit

from repro.core import BenesNetwork, in_class_f
from repro.core.bits import (
    interleave_bits,
    reverse_bits,
    rotate_left,
    rotate_right,
)
from repro.permclasses import is_bpc, table_i_specs


def _independent_definitions(order):
    """Each Table I row defined directly on indices, not via BPC."""
    n = 1 << order
    q = order // 2
    side = 1 << q
    defs = {
        "bit reversal": [reverse_bits(i, order) for i in range(n)],
        "vector reversal": [n - 1 - i for i in range(n)],
        "perfect shuffle": [rotate_left(i, order) for i in range(n)],
        "unshuffle": [rotate_right(i, order) for i in range(n)],
    }
    if order % 2 == 0:
        defs["matrix transpose"] = [
            (i % side) * side + (i // side) for i in range(n)
        ]
        defs["shuffled row major"] = [
            interleave_bits(i // side, i % side, q) for i in range(n)
        ]
        srm = defs["shuffled row major"]
        inverse = [0] * n
        for src, dst in enumerate(srm):
            inverse[dst] = src
        defs["bit shuffle"] = inverse
    return defs


def _table(order):
    rows = [f"Table I at n = {order} (N = {1 << order}):",
            f"{'permutation':<20} {'A-vector':<30} {'in F(n)':>8}"]
    for name, spec in table_i_specs(order):
        rows.append(
            f"{name:<20} {str(spec):<30} "
            f"{str(in_class_f(spec.to_permutation())):>8}"
        )
    return "\n".join(rows)


def test_table1_avectors_match_definitions(benchmark):
    order = 4

    def check():
        defs = _independent_definitions(order)
        results = {}
        for name, spec in table_i_specs(order):
            results[name] = spec.to_permutation().as_tuple() == tuple(
                defs[name]
            )
        return results

    results = benchmark(check)
    assert all(results.values()), results
    emit("TAB1: Table I", _table(4) + "\n\n" + _table(6))


def test_table1_all_rows_route(benchmark):
    order = 6
    net = BenesNetwork(order)
    specs = table_i_specs(order)

    def route_all():
        return [net.route(spec.to_permutation()).success
                for _, spec in specs]

    outcomes = benchmark(route_all)
    assert all(outcomes)


def test_table1_recognition_roundtrip(benchmark):
    order = 6

    def recognize_all():
        return [
            is_bpc(spec.to_permutation()) == spec
            for _, spec in table_i_specs(order)
        ]

    assert all(benchmark(recognize_all))
