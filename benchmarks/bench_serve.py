"""SERVE — routing-as-a-service throughput under concurrent load.

Not a paper claim: the service-level perf budget for the ``benes
serve`` daemon.  A closed-loop load generator runs C concurrent client
threads against a daemon started in-process; each client opens its own
TCP connection and issues route requests one at a time (send, wait,
repeat), so the only batching is what the daemon's **coalescing
queue** builds by overlapping requests from different connections.

Two modes per client count:

- ``coalesced``  — the production configuration (``--max-batch 64``):
  concurrent requests from many connections merge into wide ``(B, N)``
  engine batches;
- ``per-request`` — the coalescer is neutered (``max_batch=1``): every
  request becomes its own single-row engine call, which is what a
  naive one-request-one-batch server would do.

The headline cell is ``coalesced`` at the highest client count; its
``speedup`` column is coalesced requests/second over per-request
requests/second at the same concurrency.  The acceptance floor
(>= 3x at >= 256 clients) is asserted by
``tools/check_bench_regression.py`` against the committed
``BENCH_serve.json``.

Run as a script to (re)generate the machine-readable report::

    PYTHONPATH=src python benchmarks/bench_serve.py --json BENCH_serve.json

or under pytest (``pytest benchmarks -k serve``) for reduced-scale
smoke assertions: response correctness under concurrency, both modes
measurable, and a sane latency distribution.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import threading
import time

import pytest
from conftest import emit

from repro.accel import have_numpy
from repro.accel._np import resolve_engine
from repro.core import random_permutation
from repro.core.fastpath import fast_self_route
from repro.serve import ServeConfig, ServeClient, start_in_thread

import random

DEFAULT_CLIENTS = (8, 64, 256)
DEFAULT_ORDER = 5
DEFAULT_REQUESTS = 16  # per client, per mode
DEFAULT_BURST = 8
DEFAULT_MAX_BATCH = 256
DEFAULT_MAX_WAIT_US = 2000.0


def _percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


_OK_MARK = b'"status":"ok"'  # canonical encoding is sorted + compact


async def _async_load(host, port, clients, rows, burst):
    """The closed-loop client swarm: ``clients`` concurrent
    connections in one event loop (one OS thread can hold hundreds of
    idle sockets, where a thread per client would spend the run
    fighting the daemon for the GIL).  Every client pre-encodes and
    pre-connects, a shared event releases them together, and each then
    issues its rows in pipelined bursts of ``burst`` — the shape
    :meth:`repro.serve.client.ServeClient.request_many` sends — waiting
    for every response of a burst before sending the next.  Both modes
    see the identical client behavior; the only difference under test
    is whether the daemon coalesces what arrives."""
    import asyncio

    from repro.serve import protocol

    latencies: list = []
    errors: list = []
    go = asyncio.Event()
    ready = asyncio.Semaphore(0)

    def pre_encode():
        """Per-client payloads, one bytes blob per burst (encoding is
        client-side work the benchmark should not time)."""
        bursts = []
        for first in range(0, len(rows), burst):
            chunk = rows[first:first + burst]
            lines = "".join(
                protocol.encode_request(protocol.RouteRequest(
                    op="route", tags=row, id=first + offset + 1)) + "\n"
                for offset, row in enumerate(chunk))
            bursts.append((lines.encode("utf-8"), len(chunk)))
        return bursts

    async def one_client():
        bursts = pre_encode()
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            ready.release()
            errors.append(f"connect: {exc}")
            return
        try:
            ready.release()
            await go.wait()
            for payload, count in bursts:
                t0 = time.perf_counter()
                writer.write(payload)
                await writer.drain()
                for _ in range(count):
                    line = await reader.readline()
                    if not line:
                        errors.append("connection closed mid-run")
                        return
                    if _OK_MARK not in line:
                        response = protocol.decode_response(line)
                        errors.append(response.error
                                      or response.status)
                elapsed = time.perf_counter() - t0
                latencies.extend([elapsed / count] * count)
        except Exception as exc:  # collected, not raised
            errors.append(f"{exc.__class__.__name__}: {exc}")
        finally:
            writer.close()

    tasks = [asyncio.ensure_future(one_client())
             for _ in range(clients)]
    for _ in range(clients):
        await ready.acquire()
    t0 = time.perf_counter()
    go.set()
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - t0
    return latencies, errors, wall


def run_load(config: ServeConfig, clients: int, requests: int,
             order: int, seed: int, burst: int = 4) -> dict:
    """Start a daemon with ``config``, drive it with ``clients``
    concurrent closed-loop connections of ``requests`` routes each
    (pipelined ``burst`` at a time), return the measured cell
    (rps / p50_us / p99_us / errors)."""
    import asyncio

    n = 1 << order
    rng = random.Random(seed)
    rows = [random_permutation(n, rng).as_tuple()
            for _ in range(requests)]
    with start_in_thread(config) as handle:
        host, port = handle.address
        latencies, errors, wall = asyncio.run(
            _async_load(host, port, clients, rows, burst))
    total = clients * requests
    ordered = sorted(latencies)
    return {
        "requests": total,
        "completed": len(latencies),
        "errors": len(errors),
        "error_samples": errors[:3],
        "wall_s": wall,
        "rps": total / wall if wall > 0 else 0.0,
        "p50_us": _percentile(ordered, 0.50) * 1e6,
        "p99_us": _percentile(ordered, 0.99) * 1e6,
    }


def _mode_config(mode: str, *, max_batch: int, max_wait_us: float,
                 order: int) -> ServeConfig:
    if mode == "coalesced":
        return ServeConfig(port=0, max_batch=max_batch,
                           max_wait_us=max_wait_us,
                           warm_orders=(order,))
    if mode == "per-request":
        # Size cutoff 1: every request flushes alone — the
        # one-request-one-batch strawman the coalescer is measured
        # against.
        return ServeConfig(port=0, max_batch=1, max_wait_us=0.0,
                           warm_orders=(order,))
    raise SystemExit(f"unknown mode {mode!r}")


def run_serve_benchmark(clients_sweep=DEFAULT_CLIENTS,
                        requests: int = DEFAULT_REQUESTS,
                        order: int = DEFAULT_ORDER,
                        max_batch: int = DEFAULT_MAX_BATCH,
                        max_wait_us: float = DEFAULT_MAX_WAIT_US,
                        seed: int = 1980,
                        burst: int = DEFAULT_BURST,
                        modes=("per-request", "coalesced")) -> dict:
    """The full sweep: every mode at every client count; coalesced
    cells carry ``speedup`` = coalesced rps / per-request rps at the
    same concurrency."""
    engine = resolve_engine(order=order, batch_size=max_batch,
                            kind="route")
    cells = []
    per_request_rps: dict = {}
    for clients in clients_sweep:
        for mode in modes:
            config = _mode_config(mode, max_batch=max_batch,
                                  max_wait_us=max_wait_us, order=order)
            measured = run_load(config, clients, requests, order,
                                seed, burst=burst)
            cell = {
                "kind": "serve",
                "order": order,
                "batch_size": max_batch if mode == "coalesced" else 1,
                "parallel": False,
                "engine": engine,
                "clients": clients,
                "mode": mode,
                "speedup": None,
                **measured,
            }
            if mode == "per-request":
                per_request_rps[clients] = measured["rps"]
            elif per_request_rps.get(clients):
                cell["speedup"] = (measured["rps"]
                                   / per_request_rps[clients])
            cells.append(cell)
    return {
        "benchmark": "serve",
        "numpy": have_numpy(),
        "cpu_count": os.cpu_count(),
        "order": order,
        "max_batch": max_batch,
        "max_wait_us": max_wait_us,
        "requests_per_client": requests,
        "burst": burst,
        "cells": cells,
    }


def format_serve_table(report: dict) -> str:
    header = (f"{'clients':>7}  {'mode':<11} {'engine':>8} "
              f"{'rps':>9} {'p50_us':>9} {'p99_us':>10} "
              f"{'speedup':>8}")
    lines = [header]
    for cell in report["cells"]:
        speedup = (f"{cell['speedup']:.1f}x"
                   if cell.get("speedup") else "-")
        lines.append(
            f"{cell['clients']:>7}  {cell['mode']:<11} "
            f"{cell['engine']:>8} {cell['rps']:>9.0f} "
            f"{cell['p50_us']:>9.0f} {cell['p99_us']:>10.0f} "
            f"{speedup:>8}")
    return "\n".join(lines)


# -- pytest smoke -------------------------------------------------------

SMOKE_CLIENTS = 8
SMOKE_REQUESTS = 4
SMOKE_ORDER = 4


def test_serve_load_responses_correct(rng):
    """Under concurrent load every response must match the scalar
    fast path for its own request row (no cross-lane mixups in the
    coalescer)."""
    n = 1 << SMOKE_ORDER
    rows = [random_permutation(n, rng).as_tuple() for _ in range(12)]
    expected = [fast_self_route(row) for row in rows]
    config = _mode_config("coalesced", max_batch=8, max_wait_us=500.0,
                          order=SMOKE_ORDER)
    per_thread: dict = {}
    with start_in_thread(config) as handle:
        host, port = handle.address

        def worker(index):
            with ServeClient(host, port) as client:
                per_thread[index] = client.route_many(rows)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
    assert len(per_thread) == 4
    for responses in per_thread.values():
        assert len(responses) == len(rows)
        for response, (ok, dst) in zip(responses, expected):
            assert response.status == "ok"
            assert response.success == ok
            assert tuple(response.mapping) == dst


def test_serve_benchmark_smoke():
    """Both modes measure at reduced scale; the report has the schema
    the trajectory tools consume."""
    report = run_serve_benchmark(clients_sweep=(SMOKE_CLIENTS,),
                                 requests=SMOKE_REQUESTS,
                                 order=SMOKE_ORDER,
                                 max_batch=8, max_wait_us=500.0)
    emit("SERVE throughput (smoke scale)", format_serve_table(report))
    assert {cell["mode"] for cell in report["cells"]} == {
        "per-request", "coalesced"}
    for cell in report["cells"]:
        assert cell["kind"] == "serve"
        assert cell["errors"] == 0, cell["error_samples"]
        assert cell["completed"] == cell["requests"]
        assert cell["rps"] > 0
        assert cell["p99_us"] >= cell["p50_us"] > 0
        assert cell["engine"]
    coalesced = [cell for cell in report["cells"]
                 if cell["mode"] == "coalesced"]
    assert coalesced[0]["speedup"] is not None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the benes serve daemon under "
                    "concurrent closed-loop load")
    parser.add_argument("--clients", default="8,64,256",
                        help="comma-separated concurrent client counts")
    parser.add_argument("--requests", type=int,
                        default=DEFAULT_REQUESTS,
                        help="requests per client per mode")
    parser.add_argument("--order", type=int, default=DEFAULT_ORDER)
    parser.add_argument("--burst", type=int, default=DEFAULT_BURST,
                        help="pipelined requests per client round "
                             "trip (identical in both modes)")
    parser.add_argument("--max-batch", type=int,
                        default=DEFAULT_MAX_BATCH)
    parser.add_argument("--max-wait-us", type=float,
                        default=DEFAULT_MAX_WAIT_US)
    parser.add_argument("--seed", type=int, default=1980)
    parser.add_argument("--modes", default="per-request,coalesced")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write BENCH_serve.json")
    parser.add_argument("--assert-p99-ms", type=float, default=None,
                        help="fail unless every coalesced cell's p99 "
                             "is under this many milliseconds")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        help="fail unless the highest-concurrency "
                             "coalesced cell clears this speedup")
    args = parser.parse_args(argv)

    clients_sweep = tuple(
        int(tok) for tok in args.clients.replace(" ", "").split(","))
    modes = tuple(args.modes.replace(" ", "").split(","))
    report = run_serve_benchmark(
        clients_sweep=clients_sweep, requests=args.requests,
        order=args.order, max_batch=args.max_batch,
        max_wait_us=args.max_wait_us, seed=args.seed,
        burst=args.burst, modes=modes)
    print(format_serve_table(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")

    failures = []
    coalesced = [cell for cell in report["cells"]
                 if cell["mode"] == "coalesced"]
    for cell in report["cells"]:
        if cell["errors"]:
            failures.append(
                f"{cell['mode']}@{cell['clients']}: "
                f"{cell['errors']} errors "
                f"(e.g. {cell['error_samples']})")
    if args.assert_p99_ms is not None:
        for cell in coalesced:
            if cell["p99_us"] > args.assert_p99_ms * 1000.0:
                failures.append(
                    f"coalesced@{cell['clients']}: p99 "
                    f"{cell['p99_us'] / 1000.0:.1f}ms > "
                    f"{args.assert_p99_ms:.1f}ms bound")
    if args.assert_speedup is not None and coalesced:
        top = max(coalesced, key=lambda cell: cell["clients"])
        if not top["speedup"] or top["speedup"] < args.assert_speedup:
            failures.append(
                f"coalesced@{top['clients']}: speedup "
                f"{top['speedup'] or 0.0:.2f}x < "
                f"{args.assert_speedup:.1f}x floor")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
