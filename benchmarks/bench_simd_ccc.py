"""CLM-CCC — the Section III cube-connected-computer results.

Measured claims:
- any F(n) permutation in exactly 2 log N - 1 interchanges
  (4 log N - 2 unit-routes in the two-transfer cost model);
- Omega permutations in n interchanges (skip first n-1);
- InverseOmega permutations in n interchanges (skip last n-1);
- BPC permutations skip every dimension with A_j = +j;
- BPC tags computed locally in O(log N) steps, keeping the total
  O(log N).
"""

import pytest
from conftest import emit

from repro.permclasses import BPCSpec, cyclic_shift
from repro.simd import CCC, load_bpc_tags, permute_ccc


@pytest.mark.parametrize("order", [4, 6, 8, 10])
def test_ccc_routes_general_f(benchmark, order, rng):
    perm = BPCSpec.random(order, rng).to_permutation()
    run = benchmark(permute_ccc, CCC(order), perm)
    assert run.success
    assert run.unit_routes == 2 * order - 1


def test_ccc_two_transfer_model(benchmark, rng):
    order = 6
    perm = BPCSpec.random(order, rng).to_permutation()
    machine = CCC(order, routes_per_interchange=2)
    run = benchmark(permute_ccc, machine, perm)
    assert run.unit_routes == 4 * order - 2


@pytest.mark.parametrize("order", [4, 6, 8])
def test_ccc_omega_skip(benchmark, order):
    perm = cyclic_shift(order, 3)
    run = benchmark(permute_ccc, CCC(order), perm, None, None, True)
    assert run.success
    assert run.unit_routes == order


@pytest.mark.parametrize("order", [4, 6, 8])
def test_ccc_inverse_omega_skip(benchmark, order):
    perm = cyclic_shift(order, 3)
    run = benchmark(
        permute_ccc, CCC(order), perm, None, None, False, True
    )
    assert run.success
    assert run.unit_routes == order


def test_ccc_bpc_skip_and_local_tags(benchmark, rng):
    order = 8
    spec = BPCSpec((0, 1, 2, 3, 5, 4, 7, 6), (False,) * 8)

    def full_flow():
        machine = CCC(order)
        steps = load_bpc_tags(machine, spec)
        run = permute_ccc(machine, list(machine.read("D")),
                          bpc_spec=spec)
        return steps, run

    steps, run = benchmark(full_flow)
    assert run.success
    assert steps == order                      # O(log N) tag generation
    # dims 0..3 fixed -> 8 of the 15 iterations skipped
    assert run.unit_routes == 2 * order - 1 - 8


def test_ccc_route_count_table(benchmark, rng):
    def table():
        rows = [f"{'n':>3} {'N':>6} {'general F':>10} {'omega':>6} "
                f"{'inv-omega':>10}"]
        for order in (3, 5, 7, 9):
            general = permute_ccc(
                CCC(order), BPCSpec.random(order, rng).to_permutation()
            ).unit_routes
            om = permute_ccc(CCC(order), cyclic_shift(order, 1),
                             omega=True).unit_routes
            iom = permute_ccc(CCC(order), cyclic_shift(order, 1),
                              inverse_omega=True).unit_routes
            rows.append(f"{order:>3} {1 << order:>6} {general:>10} "
                        f"{om:>6} {iom:>10}")
        return "\n".join(rows)

    body = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("CLM-CCC: unit-routes on an N-PE CCC "
         "(paper: 2logN-1 general, logN with skip rules)", body)
