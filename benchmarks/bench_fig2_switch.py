"""FIG2 — the two-state binary switch (Fig. 2)."""

from conftest import emit

from repro.core.switch import CROSS, STRAIGHT, BinarySwitch, Signal
from repro.viz import render_switch


def test_fig2_switch_states(benchmark):
    def exercise():
        sw = BinarySwitch()
        outcomes = []
        for state in (STRAIGHT, CROSS):
            sw.set_state(state)
            outcomes.append(sw.transfer("upper", "lower"))
        return outcomes

    straight, cross = benchmark(exercise)
    assert straight == ("upper", "lower")
    assert cross == ("lower", "upper")
    emit("FIG2: binary switch", render_switch())


def test_fig2_self_setting_logic(benchmark):
    # Fig. 3 logic on a single switch: state = tag bit b of upper input.
    def exercise():
        states = []
        for tag in range(8):
            for b in range(3):
                sw = BinarySwitch()
                sw.self_route(Signal(tag=tag), Signal(tag=(tag + 1) % 8), b)
                states.append(int(sw.state))
        return states

    states = benchmark(exercise)
    expected = [(tag >> b) & 1 for tag in range(8) for b in range(3)]
    assert states == expected
