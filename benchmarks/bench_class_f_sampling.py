"""ABL-SAMPLE — the constructive F(n) parameterization at scale.

The transfer-matrix recursion (DESIGN.md / core/sampling.py) counts and
samples ``F(n)`` without enumeration.  Regenerated here:

- |F(n)| for n = 1..3 by three independent methods (exhaustive,
  Theorem 1 filter, transfer-matrix recursion) — all agree;
- constructive sampling cost up to n = 10, with every sample verified
  against the structural network.
"""

import pytest
from conftest import emit

from repro.analysis import class_f_count
from repro.core import (
    BenesNetwork,
    class_f_count_recursive,
    in_class_f,
    random_class_f,
)


def test_counting_methods_agree(benchmark):
    def counts():
        return {
            order: (class_f_count(order),
                    class_f_count_recursive(order))
            for order in (1, 2, 3)
        }

    results = benchmark.pedantic(counts, rounds=1, iterations=1)
    body = "\n".join(
        f"n={order}: exhaustive={a}  transfer-matrix={b}"
        for order, (a, b) in results.items()
    )
    emit("ABL-SAMPLE: |F(n)| by independent methods", body)
    assert all(a == b for a, b in results.values())
    assert results[2][0] == 20 and results[3][0] == 11632


@pytest.mark.parametrize("order", [4, 6, 8, 10])
def test_sampling_scales(benchmark, order, rng):
    perm = benchmark(random_class_f, order, rng)
    assert in_class_f(perm)


def test_samples_route_on_network(benchmark, rng):
    order = 8
    net = BenesNetwork(order)

    def sample_and_route():
        perm = random_class_f(order, rng)
        return net.route(perm).success

    assert benchmark(sample_and_route)
