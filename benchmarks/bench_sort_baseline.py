"""CLM-SORT — the sorting baseline (Section III).

The paper: Batcher's bitonic sort gives the asymptotically best known
*arbitrary*-permutation algorithms — O(log^2 N) on CCC/PSC — while the
self-routing simulation does class-F permutations in O(log N).

Shape to reproduce: the class-F router wins by a factor that grows as
(log N + 1)/2 on the CCC; the sort wins on generality (it realizes
everything).
"""

import pytest
from conftest import emit

from repro.core import in_class_f, random_permutation
from repro.permclasses import BPCSpec
from repro.simd import (
    CCC,
    PSC,
    permute_ccc,
    sort_permute_ccc,
    sort_permute_psc,
)


@pytest.mark.parametrize("order", [4, 6, 8])
def test_ccc_sort_cost(benchmark, order, rng):
    perm = random_permutation(1 << order, rng)
    run = benchmark(sort_permute_ccc, CCC(order), perm)
    assert run.success
    assert run.route_instructions == order * (order + 1) // 2


@pytest.mark.parametrize("order", [4, 6, 8])
def test_psc_sort_cost(benchmark, order, rng):
    perm = random_permutation(1 << order, rng)
    run = benchmark(sort_permute_psc, PSC(order), perm)
    assert run.success
    # Stone schedule: n^2 shuffles + data-dependent exchanges
    assert run.unit_routes >= order * order


def test_crossover_table(benchmark, rng):
    def table():
        rows = [f"{'n':>3} {'N':>6} {'F-router':>9} {'sort':>6} "
                f"{'ratio':>6}"]
        ratios = []
        for order in (3, 5, 7, 9):
            perm = BPCSpec.random(order, rng).to_permutation()
            froutes = permute_ccc(CCC(order), perm).unit_routes
            sroutes = sort_permute_ccc(CCC(order), perm).unit_routes
            ratios.append(sroutes / froutes)
            rows.append(f"{order:>3} {1 << order:>6} {froutes:>9} "
                        f"{sroutes:>6} {sroutes / froutes:>6.2f}")
        return "\n".join(rows), ratios

    body, ratios = benchmark.pedantic(table, rounds=1, iterations=1)
    emit("CLM-SORT: class-F routing vs bitonic sort on the CCC "
         "(paper: O(logN) vs O(log^2 N))", body)
    # the advantage grows with N — the asymptotic separation
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0] >= 1.0


def test_sort_generality(benchmark, rng):
    """What the sort buys: it realizes permutations outside F."""
    order = 5
    perm = random_permutation(32, rng)
    while in_class_f(perm):
        perm = random_permutation(32, rng)

    def both():
        f_run = permute_ccc(CCC(order), perm)
        s_run = sort_permute_ccc(CCC(order), perm)
        return f_run.success, s_run.success

    f_ok, s_ok = benchmark(both)
    assert not f_ok and s_ok
