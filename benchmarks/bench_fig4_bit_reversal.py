"""FIG4 — bit reversal self-routed on B(3) (Fig. 4).

Regenerates the worked figure: the binary destination tag on every line
at every stage, all switches set from tag bits, every signal arriving.
Also times self-routing of the bit-reversal permutation across network
sizes.
"""

import pytest
from conftest import emit

from repro.core import BenesNetwork
from repro.core.bits import reverse_bits
from repro.permclasses import bit_reversal
from repro.viz import render_route


def test_fig4_trace(benchmark):
    net = BenesNetwork(3)
    perm = bit_reversal(3).to_permutation()
    result = benchmark(net.route, perm, None, False, True)
    assert result.success
    emit("FIG4: bit reversal on self-routing B(3)",
         render_route(result, 3))
    # the figure's headline facts
    assert result.realized == perm
    assert len(result.stages) == 5


@pytest.mark.parametrize("order", [3, 5, 7, 9])
def test_fig4_bit_reversal_scales(benchmark, order):
    net = BenesNetwork(order)
    perm = [reverse_bits(i, order) for i in range(1 << order)]
    result = benchmark(net.route, perm)
    assert result.success
