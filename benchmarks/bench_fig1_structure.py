"""FIG1 — the recursive structure of B(n) (Fig. 1).

Regenerates the structural facts Fig. 1 depicts: ``2 log N - 1``
stages of ``N/2`` switches (``N log N - N/2`` total), with the
unshuffle links into the two ``B(n-1)`` sub-networks and the shuffle
links out of them — and times topology construction across sizes.
"""

from conftest import emit

from repro.core import BenesNetwork
from repro.core.topology import BenesTopology, shuffle_link, unshuffle_link
from repro.viz import render_topology


def _structure_table() -> str:
    rows = [f"{'n':>3} {'N':>6} {'stages':>7} {'switches':>9} "
            f"{'N*logN-N/2':>11}"]
    for order in range(1, 11):
        net = BenesNetwork(order)
        n = net.n_terminals
        rows.append(
            f"{order:>3} {n:>6} {net.n_stages:>7} {net.n_switches:>9} "
            f"{n * order - n // 2:>11}"
        )
    return "\n".join(rows)


def test_fig1_structure_counts(benchmark):
    table = benchmark(_structure_table)
    emit("FIG1: B(n) structure (paper: 2logN-1 stages, "
         "N logN - N/2 switches)", table)
    for order in range(1, 11):
        net = BenesNetwork(order)
        n = net.n_terminals
        assert net.n_stages == 2 * order - 1
        assert net.n_switches == n * order - n // 2


def test_fig1_recursive_wiring(benchmark):
    topo = benchmark(BenesTopology.build, 6)
    topo.validate()
    # Fig. 1 wiring: first link unshuffles into sub-networks, last link
    # shuffles out of them.
    assert topo.links[0] == unshuffle_link(6)
    assert topo.links[-1] == shuffle_link(6)
    emit("FIG1: B(3) layout", render_topology(3))
